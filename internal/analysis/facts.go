package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// A Fact is a serializable statement an analyzer proves about a
// function, keyed by the function's stable full name so that facts
// exported while analyzing one package can be imported by analyzers
// running later (in topological import order) on its dependents.
// Facts must round-trip through JSON: the driver can dump the whole
// store for debugging, and the golden tests pin the schema.
type Fact interface {
	// FactName distinguishes fact kinds on one function. Each
	// analyzer should namespace its facts (e.g. "allocguard.result").
	FactName() string
}

// factTypes maps fact names to constructors so a serialized store can
// be decoded back into concrete fact values.
var factTypes = map[string]func() Fact{}

// RegisterFactType makes a fact kind decodable. Call from the owning
// analyzer's init. Duplicate names panic, mirroring Register.
func RegisterFactType(fresh func() Fact) {
	name := fresh().FactName()
	if _, dup := factTypes[name]; dup {
		panic("analysis: duplicate fact type " + name)
	}
	factTypes[name] = fresh
}

// FuncKey is the stable identity of a function across type-check
// units. Distinct units re-check the same import path into distinct
// *types.Package instances, so object pointers do not compare across
// packages; the qualified full name (with generic instantiations
// folded to their origin) does.
func FuncKey(f *types.Func) string {
	if o := f.Origin(); o != nil {
		f = o
	}
	return f.FullName()
}

// FactStore holds every exported fact for one driver run, keyed by
// FuncKey then fact name.
type FactStore struct {
	m map[string]map[string]Fact

	// journal, when non-nil, receives every export/delete in order.
	// The incremental driver points it at the current unit's op list
	// so the unit's fact activity can be replayed from cache.
	journal *[]factOp
}

// factOp is one journaled store mutation.
type factOp struct {
	Del  bool            `json:"del,omitempty"`
	Key  string          `json:"func"`
	Name string          `json:"fact"`
	Data json.RawMessage `json:"data,omitempty"`
}

// setJournal directs subsequent ops into dst (nil stops recording).
func (s *FactStore) setJournal(dst *[]factOp) { s.journal = dst }

// replayOps applies a journaled op sequence, decoding facts through
// the registered constructors.
func (s *FactStore) replayOps(ops []factOp) error {
	for _, op := range ops {
		if op.Del {
			s.DeleteKey(op.Key, op.Name)
			continue
		}
		fresh, ok := factTypes[op.Name]
		if !ok {
			return fmt.Errorf("unregistered fact type %q", op.Name)
		}
		fact := fresh()
		if err := json.Unmarshal(op.Data, fact); err != nil {
			return fmt.Errorf("fact %s on %s: %w", op.Name, op.Key, err)
		}
		s.ExportKey(op.Key, fact)
	}
	return nil
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[string]map[string]Fact{}}
}

// ExportKey records a fact for the function with the given key,
// replacing any previous fact of the same kind (analyzers re-export
// on every fixpoint round).
func (s *FactStore) ExportKey(key string, fact Fact) {
	if s.m[key] == nil {
		s.m[key] = map[string]Fact{}
	}
	s.m[key][fact.FactName()] = fact
	if s.journal != nil {
		data, err := json.Marshal(fact)
		if err != nil {
			data = nil
		}
		*s.journal = append(*s.journal, factOp{Key: key, Name: fact.FactName(), Data: data})
	}
}

// Export records a fact for fn.
func (s *FactStore) Export(fn *types.Func, fact Fact) {
	s.ExportKey(FuncKey(fn), fact)
}

// ImportKey retrieves a fact by function key and fact name.
func (s *FactStore) ImportKey(key, name string) (Fact, bool) {
	f, ok := s.m[key][name]
	return f, ok
}

// Import retrieves a fact for fn.
func (s *FactStore) Import(fn *types.Func, name string) (Fact, bool) {
	if fn == nil {
		return nil, false
	}
	return s.ImportKey(FuncKey(fn), name)
}

// DeleteKey removes one fact kind from a function, used when a
// fixpoint round withdraws a previously exported summary.
func (s *FactStore) DeleteKey(key, name string) {
	delete(s.m[key], name)
	if s.journal != nil {
		*s.journal = append(*s.journal, factOp{Del: true, Key: key, Name: name})
	}
}

// Len counts stored facts.
func (s *FactStore) Len() int {
	n := 0
	for _, facts := range s.m {
		n += len(facts)
	}
	return n
}

// serializedFact is the JSON shape of one (function, fact) pair.
type serializedFact struct {
	Func string          `json:"func"`
	Name string          `json:"fact"`
	Data json.RawMessage `json:"data"`
}

// MarshalJSON renders the store as a deterministic array sorted by
// (function key, fact name).
func (s *FactStore) MarshalJSON() ([]byte, error) {
	var out []serializedFact
	for key, facts := range s.m {
		for name, fact := range facts {
			data, err := json.Marshal(fact)
			if err != nil {
				return nil, fmt.Errorf("fact %s on %s: %w", name, key, err)
			}
			out = append(out, serializedFact{Func: key, Name: name, Data: data})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Name < out[j].Name
	})
	return json.Marshal(out)
}

// UnmarshalJSON rebuilds a store from MarshalJSON output using the
// registered fact constructors.
func (s *FactStore) UnmarshalJSON(data []byte) error {
	var in []serializedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.m = map[string]map[string]Fact{}
	for _, sf := range in {
		fresh, ok := factTypes[sf.Name]
		if !ok {
			return fmt.Errorf("unregistered fact type %q", sf.Name)
		}
		fact := fresh()
		if err := json.Unmarshal(sf.Data, fact); err != nil {
			return fmt.Errorf("fact %s on %s: %w", sf.Name, sf.Func, err)
		}
		s.ExportKey(sf.Func, fact)
	}
	return nil
}
