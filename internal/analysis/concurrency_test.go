package analysis_test

import "testing"

// TestLockOrder seeds one true positive per lockorder finding kind:
// a lock-order cycle across two functions (reported at the first
// edge by the Finish phase), a recursive acquisition, a blocking
// operation while a mutex is held (locally, through a callee's
// fact, through a lock helper that returns holding, and past a
// deferred unlock), plus clean shapes that must stay silent.
func TestLockOrder(t *testing.T) {
	files := map[string]string{"lo/lo.go": `package lo

import "sync"

var muA, muB sync.Mutex

func abOrder() {
	muA.Lock()
	muB.Lock() // want lockorder
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

func recursive() {
	muA.Lock()
	muA.Lock() // want lockorder
	muA.Unlock()
	muA.Unlock()
}

func recvHeld(ch chan int) int {
	muA.Lock()
	v := <-ch // want lockorder
	muA.Unlock()
	return v
}

func waitOn(ch chan int) int {
	return <-ch // want lockorder
}

func callHeld(ch chan int) int {
	muB.Lock()
	v := waitOn(ch)
	muB.Unlock()
	return v
}

func lockA() {
	muA.Lock()
}

func helperHeld(ch chan int) {
	lockA()
	<-ch // want lockorder
	muA.Unlock()
}

func deferHeld(ch chan int) int {
	muB.Lock()
	defer muB.Unlock()
	return <-ch // want lockorder
}

func clean(ch chan int) int {
	muA.Lock()
	defer muA.Unlock()
	return len(ch)
}

func unlockBeforeWait(ch chan int) int {
	muA.Lock()
	muA.Unlock()
	return <-ch
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

// TestChanSafety seeds each chansafety finding kind: send and close
// after a reachable close, a consumer-side close, a send hidden
// behind a method call on a value whose Close was already called
// (the Pipe "Submit after Close" shape, via closes/sends facts), an
// unbounded loop spawn, and a select no producer can ever fire —
// next to the bounded/guarded variants that must stay silent.
func TestChanSafety(t *testing.T) {
	files := map[string]string{"cs/cs.go": `package cs

type queue struct {
	jobs chan int
}

func (q *queue) Close() {
	close(q.jobs)
}

func (q *queue) Submit(v int) {
	q.jobs <- v
}

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want chansafety
}

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want chansafety
}

func consumerClose(ch chan int) {
	<-ch
	close(ch) // want chansafety
}

func submitAfterClose(q *queue) {
	q.Close()
	q.Submit(1) // want chansafety
}

func closeGuarded(ch chan int, stop bool) {
	if stop {
		close(ch)
		return
	}
	ch <- 1
}

func fanout(items []int, done chan int) {
	for range items {
		go func() { // want chansafety
			done <- 1
		}()
	}
}

func boundedFanout(items []int, tokens chan struct{}, done chan int) {
	for range items {
		tokens <- struct{}{}
		go func() {
			done <- 1
			<-tokens
		}()
	}
}

func deadSelect() int {
	ch := make(chan int)
	select { // want chansafety
	case v := <-ch:
		return v
	}
}

func liveSelect() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	select {
	case v := <-ch:
		return v
	}
}

func bufferedSendSelect() {
	ch := make(chan int, 1)
	select {
	case ch <- 1:
	}
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

// TestCtxFlow seeds each ctxflow finding kind: an exported API that
// blocks with no cancellation affordance (directly and through an
// unexported helper's fact), a goroutine spinning in an
// uncancellable loop, a context stored in a struct field, and a
// context-taking function whose cancellation never reaches the
// goroutine it spawns. Affordance-carrying and signal-watching
// variants must stay silent.
func TestCtxFlow(t *testing.T) {
	files := map[string]string{"cf/cf.go": `package cf

import "context"

var events = make(chan int)

func Drain() int {
	return <-events // want ctxflow
}

func recvOne() int {
	return <-events // want ctxflow
}

func Pump() int {
	return recvOne()
}

func WithStop(stop chan struct{}) int {
	<-stop
	return <-events
}

func spinWorker(n *int) {
	go func() { // want goroleak
		for { // want ctxflow
			*n++
		}
	}()
}

type session struct {
	ctx context.Context // want ctxflow
	id  int
}

func serve(ctx context.Context, n *int) {
	go func() { // want ctxflow goroleak
		*n++
	}()
}

func serveOK(ctx context.Context, n *int) {
	go func() {
		<-ctx.Done()
		*n++
	}()
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

// TestConcurrencyWaiverSpans proves the multi-line waiver contract
// for each new analyzer: a directive on (or above) the first line of
// a multi-line statement silences findings reported on the
// statement's continuation lines, while the identical unwaived shape
// still fires.
func TestConcurrencyWaiverSpans(t *testing.T) {
	files := map[string]string{"ws/ws.go": `package ws

import "sync"

var mu sync.Mutex

var feed = make(chan int)

func waivedLock(ch chan int) []int {
	mu.Lock()
	//arcvet:ignore lockorder fixture: the channel is fed before the lock is taken
	out := []int{
		<-ch,
	}
	mu.Unlock()
	return out
}

func unwaivedLock(ch chan int) []int {
	mu.Lock()
	out := []int{
		<-ch, // want lockorder
	}
	mu.Unlock()
	return out
}

type box struct {
	c chan int
}

func (b *box) Close() {
	close(b.c)
}

func (b *box) Put(v int) {
	b.c <- v
}

func waivedReuse(b *box) {
	b.Close()
	//arcvet:ignore chansafety fixture: probe sends tolerated by the shutdown test
	for _, v := range []int{1, 2} {
		b.Put(v)
	}
}

func unwaivedReuse(b *box) {
	b.Close()
	for _, v := range []int{1, 2} {
		b.Put(v) // want chansafety
	}
}

func WaivedDrain() []int {
	//arcvet:ignore ctxflow fixture: the test harness feeds the channel
	out := []int{
		<-feed,
	}
	return out
}

func UnwaivedDrain() []int {
	out := []int{
		<-feed, // want ctxflow
	}
	return out
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}
