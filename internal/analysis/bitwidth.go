package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// bitioWidthArg maps bitio helper names to the index of their bit-
// width argument.
var bitioWidthArg = map[string]int{
	"ReadBits":  0,
	"WriteBits": 1,
	"Peek":      0,
	"Skip":      0,
}

func init() {
	Register(&Analyzer{
		Name: "bitwidth",
		Doc: "reports bitio read/write calls with a constant width outside [1,64] " +
			"and shifts whose constant count meets or exceeds the operand's bit " +
			"size — both silently corrupt SZ/ZFP bit streams",
		Run: runBitWidth,
	})
}

func runBitWidth(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkBitioWidth(pass, x)
			case *ast.BinaryExpr:
				if x.Op == token.SHL || x.Op == token.SHR {
					checkShift(pass, x.X, x.Y, x.OpPos, x.Op)
				}
			case *ast.AssignStmt:
				if x.Tok == token.SHL_ASSIGN || x.Tok == token.SHR_ASSIGN {
					checkShift(pass, x.Lhs[0], x.Rhs[0], x.TokPos, x.Tok)
				}
			}
			return true
		})
	}
	return nil
}

// checkBitioWidth validates constant width arguments of bitio calls.
func checkBitioWidth(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil || !strings.HasSuffix(f.Pkg().Path(), "internal/bitio") {
		return
	}
	idx, ok := bitioWidthArg[f.Name()]
	if !ok || idx >= len(call.Args) {
		return
	}
	width, ok := constInt(pass.Info, call.Args[idx])
	if !ok {
		return
	}
	if width < 1 || width > 64 {
		pass.Reportf(call.Args[idx].Pos(), "bitio.%s width %d outside [1,64]", f.Name(), width)
	}
}

// checkShift flags constant shift counts that meet or exceed the
// shifted operand's bit size (the result is always zero / sign fill,
// which is never what stream code intends).
func checkShift(pass *Pass, lhs, rhs ast.Expr, pos token.Pos, op token.Token) {
	// A fully constant shift is folded and range-checked by the
	// compiler; only typed, non-constant operands can mask bugs.
	// Info.TypeOf (rather than the Types map alone) also resolves
	// identifiers on the left of <<= / >>=.
	if tv, ok := pass.Info.Types[lhs]; ok && tv.Value != nil {
		return
	}
	t := pass.Info.TypeOf(lhs)
	if t == nil {
		return
	}
	b, ok := basicInt(t)
	if !ok {
		return
	}
	count, ok := constInt(pass.Info, rhs)
	if !ok {
		return
	}
	if count >= int64(intBits(b)) || count < 0 {
		pass.Reportf(pos, "%s by %d on %d-bit %s always yields a constant", op, count, intBits(b), b.Name())
	}
}
