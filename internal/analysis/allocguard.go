package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocguard reports a value decoded from untrusted bytes flowing
// into an allocation size or an io read bound without an intervening
// comparison against a declared cap. One flipped header bit in a
// compressed stream must never be able to demand gigabytes before
// the decoder renders a verdict.
func init() {
	Register(&Analyzer{
		Name: "allocguard",
		Doc: "an allocation size (make length/capacity, append in a wire-counted loop) or io read bound " +
			"(io.ReadFull slice bound, io.CopyN count) derives from untrusted input — binary.*Uint*, " +
			"bitio reads, huffman-decoded symbols, or a fact-summarized call — with no bounding " +
			"comparison between the decode and the allocation",
		Run: runAllocGuard,
	})
}

func runAllocGuard(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			// Test and fuzz harnesses allocate from their own inputs
			// on purpose.
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hooks := &taintHooks{
				makeSize: func(pos token.Pos, origin string) {
					pass.Reportf(pos, "make size derives from untrusted input (%s) without a bounding comparison", origin)
				},
				readBound: func(pos token.Pos, what, origin string) {
					pass.Reportf(pos, "%s derives from untrusted input (%s) without a bounding comparison", what, origin)
				},
				loopAppend: func(pos token.Pos, origin string) {
					pass.Reportf(pos, "append grows across a loop whose trip count derives from untrusted input (%s) without a bounding comparison", origin)
				},
				paramAlloc: func(pos token.Pos, callee *types.Func, origin string) {
					pass.Reportf(pos, "untrusted value (%s) reaches an unguarded allocation inside %s", origin, callee.Name())
				},
			}
			scanTaint(pass.Info, pass.Facts, fd, hooks)
		}
	}
	return nil
}
