package analysis

// Shared infrastructure for the concurrency-contract analyzers
// (lockorder, chansafety, ctxflow): repo-wide lock-class naming,
// channel/expression identity, and the classification of operations
// that can block a goroutine indefinitely.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BlockSite is one potentially-indefinite blocking operation, carried
// inside facts so callers in later-analyzed packages see what a
// callee may wait on. Via names the call chain from the fact's
// function down to the operation (empty for a local site).
type BlockSite struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	What string `json:"what"`
	Via  string `json:"via,omitempty"`
}

func (s BlockSite) key() string {
	return s.What + "|" + s.File + "|" + itoa(s.Line) + ":" + itoa(s.Col)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// chainOf resolves an expression like p.pipe.workers to its root
// object and dotted field path (the standalone form of the resolver
// deadwait uses). Parens, addresses-of, and derefs are transparent.
func chainOf(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	var parts []string
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[v]
			if obj == nil {
				obj = info.Defs[v]
			}
			if obj == nil {
				return nil, "", false
			}
			if _, isPkg := obj.(*types.PkgName); isPkg {
				return nil, "", false
			}
			return obj, joinPath(parts), true
		case *ast.SelectorExpr:
			parts = append([]string{v.Sel.Name}, parts...)
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil, "", false
			}
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil, "", false
		}
	}
}

func joinPath(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}

// isSyncNamed reports whether t (after pointer deref) is the named
// type sync.<name>.
func isSyncNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync" && named.Obj().Name() == name
}

// isMutexType reports a sync.Mutex or sync.RWMutex (after deref).
func isMutexType(t types.Type) bool {
	return isSyncNamed(t, "Mutex") || isSyncNamed(t, "RWMutex")
}

// isContextType reports the context.Context interface type.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "context" && named.Obj().Name() == "Context"
}

// lockClass derives the repo-wide identity of the mutex named by
// expr: "pkg/path.Type.field" for a mutex field reached through a
// value of a named type, "pkg/path.var[.field]" for a package-level
// variable, and "" for locks the analysis cannot class across
// functions (locals, unresolvable chains). Order edges are only
// recorded between classed locks; unclassed locks still participate
// in held-while-blocking checks within their function.
func lockClass(info *types.Info, pkg *types.Package, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		// Prefer the innermost owner type: the class of a.b.mu is
		// "pkg.TypeOfB.mu" no matter how the value was reached.
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				if tp := named.Obj().Pkg(); tp != nil {
					return tp.Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
				}
			}
		}
	}
	root, path, ok := chainOf(info, expr)
	if !ok || root == nil {
		return ""
	}
	// Package-level variable (possibly with a field path).
	if v, isVar := root.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		cls := v.Pkg().Path() + "." + v.Name()
		if path != "" {
			cls += "." + path
		}
		return cls
	}
	return ""
}

// blockingCall classifies a call expression that can block its
// goroutine indefinitely: sync.WaitGroup.Wait, sync.Cond.Wait, a
// method call through an io interface value (Read/Write/ReadFrom/
// WriteTo on io.Reader-shaped interfaces), or one of the io helpers
// that loop over such calls. Mutex acquisition is deliberately not
// here — lockorder models locks separately.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "io" {
		switch fn.Name() {
		case "ReadFull", "ReadAtLeast", "ReadAll", "Copy", "CopyN", "CopyBuffer", "Pipe":
			if fn.Name() == "Pipe" {
				return "", false
			}
			return "io." + fn.Name(), true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if sel.Sel.Name == "Wait" {
		if isSyncNamed(sig.Recv().Type(), "WaitGroup") {
			return "sync.WaitGroup.Wait", true
		}
		if isSyncNamed(sig.Recv().Type(), "Cond") {
			return "sync.Cond.Wait", true
		}
	}
	// A Read/Write-shaped call through an interface value is I/O whose
	// latency the callee cannot bound (network, pipes, blocked peers).
	if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && types.IsInterface(tv.Type.Underlying()) {
		switch sel.Sel.Name {
		case "Read", "Write", "ReadFrom", "WriteTo", "ReadByte", "WriteByte":
			return "interface " + sel.Sel.Name + " (I/O)", true
		}
	}
	return "", false
}

// localForkJoinWait reports whether a Wait call on the given
// WaitGroup chain is a local fork-join: the same function both Adds
// to the group and spawns the goroutines that Done it, so the wait is
// bounded by work the function itself started (parallel.For's shape)
// rather than by an external event. Such waits are exempt from the
// blocking-op checks; deadwait still audits their Add/Done balance.
func localForkJoinWait(info *types.Info, body *ast.BlockStmt, root types.Object, path string) bool {
	sawAdd, sawGo := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			sawGo = true
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" {
				return true
			}
			r, p, ok := chainOf(info, sel.X)
			if ok && r == root && p == path {
				sawAdd = true
			}
		}
		return true
	})
	return sawAdd && sawGo
}

// localJoinReceive reports whether a receive on the channel chain is
// joined to a goroutine the same function spawned: the channel is a
// function-local make(chan ...) and some go statement in the body
// sends on it (faultinject's sandbox shape). The wait is then bounded
// by the function's own spawn, not an external producer.
func localJoinReceive(info *types.Info, body *ast.BlockStmt, root types.Object, path string) bool {
	if path != "" || root == nil {
		return false
	}
	v, ok := root.(*types.Var)
	if !ok || v.Parent() == nil || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
		return false
	}
	sends := false
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if s, ok := m.(*ast.SendStmt); ok {
				if r, p, ok := chainOf(info, s.Chan); ok && r == root && p == "" {
					sends = true
				}
			}
			return !sends
		})
		return !sends
	})
	return sends
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// carriesCancel walks a type for a cancellation affordance a caller
// could use to unblock the value's methods: a channel or a
// context.Context, reachable through pointers and struct fields.
func carriesCancel(t types.Type, depth int) bool {
	if t == nil || depth > 6 {
		return false
	}
	if isContextType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return carriesCancel(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesCancel(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// mergeBlockSites folds callee block sites into a merged map with a
// via chain, mirroring panicfact's merge. Returns true when a new
// site was added.
func mergeBlockSites(merged map[string]BlockSite, callee string, sites []BlockSite) bool {
	added := false
	for _, s := range sites {
		via := calleeShortName(callee)
		if s.Via != "" {
			via += " → " + s.Via
		}
		if len(via) > 120 {
			via = via[:120]
		}
		ns := s
		ns.Via = via
		if _, dup := merged[ns.key()]; !dup {
			merged[ns.key()] = ns
			added = true
		}
	}
	return added
}

// sortBlockSites orders sites by position then label for
// deterministic facts.
func sortBlockSites(sites []BlockSite) {
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && blockSiteLess(sites[j], sites[j-1]); j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
}

func blockSiteLess(a, b BlockSite) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	if a.What != b.What {
		return a.What < b.What
	}
	return a.Via < b.Via
}

// declTargets collects the non-test function declarations of a pass,
// the shape every interprocedural analyzer iterates.
type declTarget struct {
	fn   *types.Func
	decl *ast.FuncDecl
}

func nonTestDecls(pass *Pass) []declTarget {
	var targets []declTarget
	for _, file := range pass.Files {
		if isTestFilename(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				targets = append(targets, declTarget{fn, fd})
			}
		}
	}
	return targets
}

func isTestFilename(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
