package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeFixture materializes a throwaway module and returns its root.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// analyze runs every registered analyzer over the fixture module.
func analyze(t *testing.T, root string) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Run(loader, dirs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	return res.Diagnostics
}

var wantRe = regexp.MustCompile(`// want ([a-z ]+)$`)

// checkMarkers compares diagnostics against `// want <analyzer>...`
// markers in the fixture sources: every marker must produce a finding
// by that analyzer on its line, and every finding must have a marker.
func checkMarkers(t *testing.T, root string, files map[string]string, diags []analysis.Diagnostic) {
	t.Helper()
	want := map[string]bool{} // "file:line analyzer"
	for name, src := range files {
		for i, line := range strings.Split(src, "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, a := range strings.Fields(m[1]) {
				want[fmt.Sprintf("%s:%d %s", name, i+1, a)] = true
			}
		}
	}
	got := map[string]bool{}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			t.Fatalf("diagnostic outside fixture: %v", d)
		}
		got[fmt.Sprintf("%s:%d %s", filepath.ToSlash(rel), d.Line, d.Analyzer)] = true
	}
	var missing, unexpected []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			unexpected = append(unexpected, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	for _, k := range missing {
		t.Errorf("expected finding not reported: %s", k)
	}
	for _, k := range unexpected {
		t.Errorf("unexpected finding: %s", k)
	}
}

func TestUncheckedErr(t *testing.T) {
	files := map[string]string{"p/p.go": `package p

import (
	"fmt"
	"io"
	"os"
	"strings"
)

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func uses() {
	mayFail()     // want uncheckederr
	twoResults()  // want uncheckederr
	_ = mayFail() // explicit discard is the opt-out
	if err := mayFail(); err != nil {
		panic(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "x")        // strings.Builder cannot fail
	fmt.Fprintln(os.Stderr, "x") // std streams are exempt
	fmt.Println("x")             // fmt.Print* convention
	var w io.Writer = &sb
	fmt.Fprint(w, "x") // want uncheckederr
	sb.WriteString("x")
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

func TestGoroLeak(t *testing.T) {
	files := map[string]string{"p/p.go": `package p

import "sync"

func work() {}

func consume(ch chan int) {}

func spawn(ch chan int, wg *sync.WaitGroup) {
	go work()              // want goroleak
	go func() { work() }() // want goroleak
	go func() { ch <- 1 }()
	go func() {
		defer wg.Done()
		work()
	}()
	go func() {
		for range ch {
		}
	}()
	go func() { close(ch) }()
	go consume(ch)
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

func TestBitWidth(t *testing.T) {
	files := map[string]string{
		"internal/bitio/bitio.go": `package bitio

type Writer struct{}

func (w *Writer) WriteBits(v uint64, n int) {}

type Reader struct{}

func (r *Reader) ReadBits(n int) (uint64, error) { return 0, nil }

func (r *Reader) Skip(n int) {}
`,
		"p/p.go": `package p

import "fixture/internal/bitio"

func bits(w *bitio.Writer, r *bitio.Reader, v uint64) {
	w.WriteBits(v, 65) // want bitwidth
	w.WriteBits(v, 0)  // want bitwidth
	w.WriteBits(v, 8)
	w.WriteBits(v, 64)
	_, _ = r.ReadBits(65) // want bitwidth
	_, _ = r.ReadBits(1)
	r.Skip(8)
}

func shifts(x uint32, y uint64, n int) uint64 {
	_ = x >> 32 // want bitwidth
	_ = x >> 31
	y <<= 64 // want bitwidth
	y <<= 1
	_ = y << uint(n) // non-constant count: not this analyzer's job
	return uint64(x) << 40
}
`,
	}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

func TestMutexCopy(t *testing.T) {
	files := map[string]string{"p/p.go": `package p

import "sync"

type locked struct {
	mu sync.Mutex
	n  int
}

func byValue(l locked)    {} // want mutexcopy
func byPointer(l *locked) {}
func plain(n int)         {}

func (l locked) bad()   {} // want mutexcopy
func (l *locked) good() {}

func iterate(xs []locked) int {
	total := 0
	for _, x := range xs { // want mutexcopy
		total += x.n
	}
	for i := range xs {
		total += xs[i].n
	}
	p := &xs[0]
	y := *p // want mutexcopy
	_ = y
	return total
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

func TestMathBits(t *testing.T) {
	files := map[string]string{
		// Path contains internal/sz, so the analyzer applies.
		"internal/sz/sz.go": `package sz

func convert(n int, u uint64, w uint32, xs []int) {
	_ = uint32(n) // want mathbits
	_ = int(u)    // want mathbits
	_ = int32(w)  // want mathbits
	_ = uint8(w)  // want mathbits
	_ = int8(n)   // want mathbits
	_ = uint64(len(xs))
	_ = int64(n)
	_ = uint64(w)
	var b uint64 = 1
	_ = b << uint(n)
	const k = 7
	_ = uint32(k)
}
`,
		// Same conversions outside the codec packages: not applicable.
		"other/other.go": `package other

func convert(n int, u uint64) {
	_ = uint32(n)
	_ = int(u)
}
`,
	}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

func TestTParallel(t *testing.T) {
	files := map[string]string{
		"p/p.go": `package p

var counter int

var registry = map[string]int{}
`,
		"p/p_test.go": `package p

import "testing"

func TestParallelMutation(t *testing.T) {
	t.Parallel()
	counter++ // want tparallel
	registry["k"] = 1 // want tparallel
}

func TestSerialMutation(t *testing.T) {
	counter++
}

func TestParallelLocal(t *testing.T) {
	t.Parallel()
	local := 0
	local++
	_ = local
}
`,
	}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

// TestExternalTestPackage ensures package foo_test files are loaded
// and analyzed as their own unit.
func TestExternalTestPackage(t *testing.T) {
	files := map[string]string{
		"p/p.go": `package p

func MayFail() error { return nil }
`,
		"p/ext_test.go": `package p_test

import (
	"testing"

	"fixture/p"
)

func TestUsesP(t *testing.T) {
	p.MayFail() // want uncheckederr
}
`,
	}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

func TestSuppressions(t *testing.T) {
	files := map[string]string{"sup/sup.go": `package sup

func mayFail() error { return nil }

func f() {
	mayFail() //arcvet:ignore uncheckederr same-line waiver
	//arcvet:ignore uncheckederr above-line waiver
	mayFail()
	//arcvet:ignore
	mayFail() //arcvet:ignore nosuchanalyzer typo
}
`}
	root := writeFixture(t, files)
	diags := analyze(t, root)
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d %s", d.Line, d.Analyzer))
	}
	sort.Strings(got)
	// Line 9: bare ignore is itself a finding. Line 10: the unknown
	// analyzer name is a finding AND fails to suppress the dropped
	// error beneath it.
	want := []string{"10 arcvet", "10 uncheckederr", "9 arcvet"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
}

func TestDiagnosticString(t *testing.T) {
	files := map[string]string{"p/p.go": `package p

func mayFail() error { return nil }

func f() {
	mayFail()
}
`}
	root := writeFixture(t, files)
	diags := analyze(t, root)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	want := filepath.Join(root, "p", "p.go") + ":6:2: [uncheckederr] result of fixture/p.mayFail contains an error that is discarded"
	if diags[0].String() != want {
		t.Fatalf("String() = %q, want %q", diags[0].String(), want)
	}
	if diags[0].File == "" || diags[0].Line != 6 || diags[0].Col != 2 {
		t.Fatalf("flattened position not populated: %+v", diags[0])
	}
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 15 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full set of 15", len(all), err)
	}
	two, err := analysis.ByName("bitwidth, mathbits")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset failed: %v", err)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("unknown analyzer name must be an error")
	}
}

func TestAppliesTo(t *testing.T) {
	a := &analysis.Analyzer{Name: "x", Packages: []string{"internal/sz"}}
	if !a.AppliesTo("fixture/internal/sz") || a.AppliesTo("fixture/other") {
		t.Fatal("package restriction not honored")
	}
	every := &analysis.Analyzer{Name: "y"}
	if !every.AppliesTo("anything") {
		t.Fatal("empty Packages must mean run everywhere")
	}
}

// TestBuildConstraints ensures platform-variant files are excluded the
// way `go build` would exclude them: by //go:build expression and by
// filename suffix. The excluded files redeclare `impl`, so if either
// were wrongly loaded the fixture would fail to typecheck.
func TestBuildConstraints(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == otherOS {
		otherOS = "linux"
	}
	otherArch := "s390x"
	if runtime.GOARCH == otherArch {
		otherArch = "amd64"
	}
	files := map[string]string{
		"p/p.go": `package p

const impl = "portable"

func mayFail() error { return nil }

func use() {
	mayFail() // want uncheckederr
}
`,
		"p/p_other.go": fmt.Sprintf(`//go:build %s

package p

const impl = "tagged"
`, otherArch),
		fmt.Sprintf("p/q_%s.go", otherOS): `package p

const impl = "suffixed"
`,
		"p/ignored.go": `//go:build ignore

package p

const impl = "ignored"
`,
	}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}

func TestBuiltinShadow(t *testing.T) {
	files := map[string]string{"p/p.go": `package p

func min(a, b int) int { // want builtinshadow
	if a < b {
		return a
	}
	return b
}

type rng struct {
	min int // fields are selector-qualified: no shadowing
	max int
}

func (r rng) clear() {} // methods are selector-qualified: no shadowing

func use() int {
	max := 3 // want builtinshadow
	r := rng{min: 1, max: max}
	r.clear()
	return min(r.min, r.max)
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}
