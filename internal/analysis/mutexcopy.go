package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "mutexcopy",
		Doc: "reports sync.Mutex/RWMutex/WaitGroup/Once/Cond/Pool/Map values copied " +
			"by value — as parameters, receivers, range values, or dereference " +
			"assignments — which forks the lock state and breaks mutual exclusion",
		Run: runMutexCopy,
	})
}

func runMutexCopy(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv != nil {
					for _, f := range x.Recv.List {
						checkFieldLock(pass, f, "receiver")
					}
				}
				if x.Type.Params != nil {
					for _, f := range x.Type.Params.List {
						checkFieldLock(pass, f, "parameter")
					}
				}
			case *ast.FuncLit:
				if x.Type.Params != nil {
					for _, f := range x.Type.Params.List {
						checkFieldLock(pass, f, "parameter")
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					if t := exprType(pass.Info, x.Value); t != nil {
						if p := lockPath(t); p != "" {
							pass.Reportf(x.Value.Pos(), "range value copies %s (via %s); iterate by index instead", p, "element copy")
						}
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					if star, ok := ast.Unparen(rhs).(*ast.StarExpr); ok {
						if t := exprType(pass.Info, star); t != nil {
							if p := lockPath(t); p != "" {
								pass.Reportf(rhs.Pos(), "dereference copies %s out of the shared value", p)
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkFieldLock flags a value (non-pointer) parameter or receiver
// whose type holds a sync primitive.
func checkFieldLock(pass *Pass, field *ast.Field, kind string) {
	t := exprType(pass.Info, field.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if p := lockPath(t); p != "" {
		pass.Reportf(field.Type.Pos(), "%s passes %s by value; use a pointer", kind, p)
	}
}

// exprType is info.Types lookup with a nil guard.
func exprType(info *types.Info, e ast.Expr) types.Type {
	// TypeOf consults the Types map and then Defs/Uses, so it also
	// resolves identifiers that only appear as definitions (e.g. the
	// value variable of a range statement).
	return info.TypeOf(e)
}
