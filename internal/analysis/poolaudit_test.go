package analysis_test

import "testing"

func TestPoolAudit(t *testing.T) {
	files := map[string]string{"p/p.go": `package p

import "sync"

type wrap struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return new(wrap) }}

// returnAfterPut hands the pooled buffer's storage to the caller and
// recycles it at the same time.
func returnAfterPut() []byte {
	w := bufPool.Get().(*wrap)
	bufPool.Put(w) // want poolaudit
	return w.b
}

// deferredPutOfReturned is the same bug spelled with defer.
func deferredPutOfReturned(n int) []byte {
	w := bufPool.Get().(*wrap)
	defer bufPool.Put(w) // want poolaudit
	return w.b[:n]
}

// returnWrapper escapes the pooled value inside a fresh struct.
func returnWrapper() *wrap {
	w := bufPool.Get().(*wrap)
	bufPool.Put(w) // want poolaudit
	return &wrap{b: w.b}
}

// unasserted uses the raw any from Get.
func unasserted() {
	w := bufPool.Get() // want poolaudit
	_ = w
}

var slicePool = sync.Pool{New: func() any { return any(make([]byte, 0, 64)) }}

// putSlice boxes the slice header on every Put.
func putSlice(b []byte) {
	slicePool.Put(b) // want poolaudit
}

// okCopyOut is the sanctioned shape: assert, copy out, recycle.
func okCopyOut(n int) []byte {
	w := bufPool.Get().(*wrap)
	defer bufPool.Put(w)
	out := make([]byte, n)
	copy(out, w.b)
	return out
}

// okReturnLen returns only a value copied out of the pooled buffer.
func okReturnLen() int {
	w := bufPool.Get().(*wrap)
	defer bufPool.Put(w)
	return len(w.b)
}

// okNestedLit: a Put inside a function literal does not alias the
// outer function's returns.
func okNestedLit() []byte {
	out := make([]byte, 8)
	f := func() {
		w := bufPool.Get().(*wrap)
		bufPool.Put(w)
	}
	f()
	return out
}

// okTypeSwitch: a type switch counts as asserting the Get result.
func okTypeSwitch() int {
	switch v := bufPool.Get().(type) {
	case *wrap:
		defer bufPool.Put(v)
		return cap(v.b)
	default:
		return 0
	}
}
`}
	root := writeFixture(t, files)
	checkMarkers(t, root, files, analyze(t, root))
}
