package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader resolves and type-checks packages. Module-local import paths
// (below ModulePath) are parsed and checked from source; everything
// else is delegated to the standard library's source importer. All
// packages share one token.FileSet so positions stay comparable.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	RootDir    string

	std  types.Importer
	deps map[string]*types.Package // import-variant cache (no test files)
}

// Unit is one type-checked analysis unit: a package's sources plus,
// when present, its external _test package as a separate Unit.
type Unit struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewLoader locates the enclosing module (walking up from dir to the
// nearest go.mod) and prepares an importer rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		RootDir:    root,
		std:        importer.ForCompiler(fset, "source", nil),
		deps:       map[string]*types.Package{},
	}, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer: module-local packages load from
// source without test files; all other paths go to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		if pkg, ok := l.deps[path]; ok {
			return pkg, nil
		}
		dir := filepath.Join(l.RootDir, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))
		files, _, err := l.parseDir(dir, false)
		if err != nil {
			return nil, err
		}
		pkg, _, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.deps[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir type-checks the package in dir including its test files,
// returning one Unit for the package itself and, when external
// (package foo_test) files exist, a second Unit for those.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.RootDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module %s", dir, l.ModulePath)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	primary, external, err := l.parseDir(abs, true)
	if err != nil {
		return nil, err
	}
	if len(primary) == 0 && len(external) == 0 {
		return nil, nil
	}
	var units []*Unit
	if len(primary) > 0 {
		pkg, info, err := l.check(path, primary)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Path: path, Files: primary, Pkg: pkg, Info: info})
	}
	if len(external) > 0 {
		pkg, info, err := l.check(path+"_test", external)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Path: path + "_test", Files: external, Pkg: pkg, Info: info})
	}
	return units, nil
}

// parseDir parses the buildable .go files of one directory, split
// into the primary package's files (optionally including in-package
// tests) and external-test-package files.
func (l *Loader) parseDir(dir string, includeTests bool) (primary, external []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !goodOSArchFile(name) {
			continue
		}
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if !buildConstraintsSatisfied(file) {
			continue
		}
		if strings.HasSuffix(file.Name.Name, "_test") {
			if includeTests {
				external = append(external, file)
			}
			continue
		}
		primary = append(primary, file)
	}
	return primary, external, nil
}

// buildConstraintsSatisfied reports whether the file's `//go:build`
// expression (if any) holds for the platform arcvet runs on. Without
// this, platform-variant pairs like mul_amd64.go / mul_noasm.go would
// both join the package and collide at typecheck.
func buildConstraintsSatisfied(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() > file.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(matchTag) {
				return false
			}
		}
	}
	return true
}

// matchTag evaluates one build tag against the running platform — the
// same set of facts `go build` would use locally, minus cgo (the
// analyzers never need it).
func matchTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, runtime.Compiler:
		return true
	case "unix":
		return unixOS[runtime.GOOS]
	}
	// Release tags: the toolchain running this code satisfies every
	// go1.N up to itself; the repo's go.mod floor makes finer checks
	// moot.
	return strings.HasPrefix(tag, "go1.")
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"js": true, "linux": true, "netbsd": true, "openbsd": true,
	"plan9": true, "solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "sparc64": true, "wasm": true,
}

// goodOSArchFile applies the filename-suffix build rules: a trailing
// _GOOS, _GOARCH, or _GOOS_GOARCH component restricts the file to that
// platform (mirroring go/build, with _test stripped first).
func goodOSArchFile(name string) bool {
	name = strings.TrimSuffix(name, ".go")
	name = strings.TrimSuffix(name, "_test")
	parts := strings.Split(name, "_")
	// The first component is never a constraint ("amd64.go" is fine).
	if len(parts) >= 2 {
		parts = parts[1:]
	}
	n := len(parts)
	if n >= 2 && knownOS[parts[n-2]] && knownArch[parts[n-1]] {
		return parts[n-2] == runtime.GOOS && parts[n-1] == runtime.GOARCH
	}
	if n >= 1 && knownArch[parts[n-1]] {
		return parts[n-1] == runtime.GOARCH
	}
	if n >= 1 && knownOS[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// check runs the type checker over files with the loader as importer.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return pkg, info, nil
}

// NewInfo allocates a fully populated types.Info so analyzers never
// hit a nil map.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// ExpandPatterns turns command-line package patterns ("./...", a
// directory, or a lone "...") into the list of directories under the
// module that contain Go files.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}
