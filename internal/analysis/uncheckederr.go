package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errSafeCallees are callees whose returned error cannot be non-nil
// by documented contract, so dropping it is conventional. Matched by
// prefix against (*types.Func).FullName.
var errSafeCallees = []string{
	"(*bytes.Buffer).",    // "err is always nil" per package docs
	"(*strings.Builder).", // same contract
	"fmt.Print",           // terminal writes; failure is unactionable
	"(hash.Hash).Write",   // "never returns an error" per hash docs
	"(hash.Hash32).Write",
	"(hash.Hash64).Write",
	"(*math/rand.Rand).Read", // always nil per math/rand docs
}

func init() {
	Register(&Analyzer{
		Name: "uncheckederr",
		Doc: "reports call statements that discard a returned error — dropped bitio " +
			"write errors, Close results, and flate flushes silently corrupt streams",
		Run: runUncheckedErr,
	})
}

func runUncheckedErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || !resultsWithError(pass.Info, call) {
				return true
			}
			name := "function"
			if f := calleeFunc(pass.Info, call); f != nil {
				full := f.FullName()
				for _, safe := range errSafeCallees {
					if strings.HasPrefix(full, safe) {
						return true
					}
				}
				if strings.HasPrefix(full, "fmt.Fprint") && writerCannotFail(pass, call) {
					return true
				}
				name = full
			}
			pass.Reportf(call.Pos(), "result of %s contains an error that is discarded", name)
			return true
		})
	}
	return nil
}

// writerCannotFail reports whether a fmt.Fprint* call writes to a
// destination whose Write cannot return an error by contract — the
// std streams (failed terminal writes have no actionable recovery,
// matching the fmt.Print* convention), bytes.Buffer, and
// strings.Builder.
func writerCannotFail(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if obj, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
			(obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	switch types.TypeString(tv.Type, nil) {
	case "*bytes.Buffer", "*strings.Builder":
		return true
	}
	return false
}
