package analysis

import (
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "builtinshadow",
		Doc: "reports declarations named after the Go 1.21+ builtins min, " +
			"max, and clear. A package-level or local helper with one of " +
			"these names shadows the builtin for its whole scope, so code " +
			"written later silently binds to the helper (with whatever " +
			"narrower signature it has) instead of the builtin — delete " +
			"the helper and use the builtin directly",
		Run: runBuiltinShadow,
	})
}

// shadowedBuiltins are the builtins added after this codebase's
// helpers were first written — exactly the names a stale local helper
// is likely to occupy.
var shadowedBuiltins = map[string]bool{"min": true, "max": true, "clear": true}

func runBuiltinShadow(pass *Pass) error {
	for ident, obj := range pass.Info.Defs {
		if obj == nil || !shadowedBuiltins[ident.Name] {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			// Methods are reached through a selector and shadow nothing.
			if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
				continue
			}
			pass.Reportf(ident.Pos(), "function %s shadows the %s builtin; drop it and use the builtin", ident.Name, ident.Name)
		case *types.Var:
			// Struct fields are selector-qualified and shadow nothing.
			if o.IsField() {
				continue
			}
			pass.Reportf(ident.Pos(), "variable %s shadows the %s builtin within its scope", ident.Name, ident.Name)
		case *types.Const, *types.TypeName:
			pass.Reportf(ident.Pos(), "declaration of %s shadows the %s builtin", ident.Name, ident.Name)
		}
	}
	return nil
}
