package experiments

import (
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/faultinject"
)

// ExtMatrixResult is an extension of the paper's Section 6.3: a full
// matrix of ECC method x fault pattern, measuring recovery, detection
// without recovery, and silent corruption. The paper spot-checks three
// points of this matrix (SEC-DED vs single bits, RS vs bursts, parity
// detect-only); the matrix fills in the rest.
type ExtMatrixResult struct {
	Rows []ExtMatrixRow
}

// ExtMatrixRow is one (config, injector) cell.
type ExtMatrixRow struct {
	Config    string
	Injector  string
	Trials    int
	Recovered int
	Detected  int // detected but not recoverable
	Silent    int // silent corruption — the outcome ARC exists to prevent
}

// ExtResilienceMatrix runs the matrix on a fixed payload.
func ExtResilienceMatrix(payloadBytes, trials int, seed int64) (*ExtMatrixResult, error) {
	if payloadBytes <= 0 {
		payloadBytes = 64 << 10
	}
	if trials <= 0 {
		trials = 100
	}
	payload := randomBytes(payloadBytes, seed)
	configs := append([]core.Config{}, ScalingConfigs()...)
	// ARC's extension method: burst tolerance at SEC-DED's cost.
	configs = append(configs, core.Config{Method: ecc.MethodInterleavedSECDED, Param: 256})
	injectors := []faultinject.Injector{
		faultinject.SingleBit{},
		faultinject.MultiBit{K: 3},
		faultinject.Burst{Bytes: 64},
	}
	res := &ExtMatrixResult{}
	for _, cfg := range configs {
		code, err := cfg.Build(1)
		if err != nil {
			return nil, err
		}
		protected := code.Encode(payload)
		for _, inj := range injectors {
			repair := func(mut []byte) ([]byte, error) {
				//arcvet:ignore integrityflow RunRepairCampaign byte-compares against ground truth; the report adds nothing to its verdict
				out, _, derr := code.Decode(mut, len(payload))
				return out, derr
			}
			rec, det, silent := faultinject.RunRepairCampaign(protected, payload, inj, repair, trials, seed)
			res.Rows = append(res.Rows, ExtMatrixRow{
				Config:    cfg.String(),
				Injector:  inj.Name(),
				Trials:    trials,
				Recovered: rec,
				Detected:  det,
				Silent:    silent,
			})
		}
	}
	return res, nil
}

// Table renders the matrix.
func (r *ExtMatrixResult) Table() *Table {
	t := &Table{
		Title:  "Extension: ECC method x fault pattern recovery matrix",
		Header: []string{"config", "fault", "trials", "recovered", "detected-lost", "silent"},
		Caption: "Expected shape: parity detects-only (recovers nothing, silent only on even\n" +
			"same-block flips); hamming recovers singles but can silently miscorrect multi-bit;\n" +
			"secded recovers singles and detects doubles; RS recovers everything incl. bursts.",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.Injector, iS(row.Trials), iS(row.Recovered), iS(row.Detected), iS(row.Silent))
	}
	return t
}
