package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/datasets"
	"repro/internal/faultinject"
	"repro/internal/pressio"
)

// StudyOptions scales the fault-injection experiments. The paper runs
// millions of trials on full SDRBench datasets; the defaults here keep
// a laptop run in seconds while preserving every qualitative finding.
type StudyOptions struct {
	Scale     int   // dataset grid scale (1 = small)
	MaxTrials int   // trials per configuration
	Seed      int64 // reproducibility
	Workers   int
}

// Defaults fills zero fields.
func (o StudyOptions) defaults() StudyOptions {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = 400
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Fig1Result reproduces Figure 1: the effect of single-bit flips at
// two stream locations on an Isabel-like field compressed with SZ-ABS
// eps = 0.1.
type Fig1Result struct {
	Trials []Fig1Trial
}

// Fig1Trial is one injected flip.
type Fig1Trial struct {
	BitPosition      int
	Status           faultinject.Status
	PercentIncorrect float64
}

// Fig1 injects flips across the compressed Isabel stream and reports
// the two most contrasting Completed outcomes plus the extremes, the
// shape behind the paper's 49.6%/99.4% examples.
func Fig1(o StudyOptions) (*Fig1Result, error) {
	o = o.defaults()
	f := datasets.Isabel(8*o.Scale, 24*o.Scale, 24*o.Scale, o.Seed)
	comp, err := pressio.New("SZ-ABS", 0.1)
	if err != nil {
		return nil, err
	}
	camp, err := faultinject.Run(faultinject.Config{
		Compressor:     comp,
		Data:           f.Data,
		Dims:           f.Dims,
		SampleFraction: 1,
		MaxTrials:      o.MaxTrials,
		Seed:           o.Seed,
		Workers:        o.Workers,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{}
	for _, t := range camp.Trials {
		if t.Status != faultinject.Completed {
			continue
		}
		res.Trials = append(res.Trials, Fig1Trial{
			BitPosition:      t.Bit,
			Status:           t.Status,
			PercentIncorrect: t.Metrics.PercentIncorrect,
		})
	}
	sort.Slice(res.Trials, func(i, j int) bool {
		return res.Trials[i].PercentIncorrect < res.Trials[j].PercentIncorrect
	})
	return res, nil
}

// Table renders the figure-1 evidence: distribution extremes.
func (r *Fig1Result) Table() *Table {
	t := &Table{
		Title:  "Figure 1: single-bit flips in SZ-ABS(eps=0.1) Isabel-like data",
		Header: []string{"percentile", "bit position", "% incorrect elements"},
		Caption: "Paper's examples: bit 400,005 -> 49.6% incorrect; bit 465,840 -> 99.4%.\n" +
			"The qualitative claim: location determines severity, and severe cases corrupt most of the field.",
	}
	if len(r.Trials) == 0 {
		return t
	}
	for _, q := range []struct {
		name string
		p    float64
	}{{"min", 0}, {"p25", 0.25}, {"median", 0.5}, {"p75", 0.75}, {"max", 1}} {
		i := int(q.p * float64(len(r.Trials)-1))
		tr := r.Trials[i]
		t.AddRow(q.name, iS(tr.BitPosition), pct(tr.PercentIncorrect))
	}
	return t
}

// Fig2Result reproduces Figure 2: the distribution of return statuses
// over all (compressor, dataset) pairs.
type Fig2Result struct {
	Cells []Fig2Cell
}

// Fig2Cell is one (compressor, dataset) pair's status distribution.
type Fig2Cell struct {
	Compressor string
	Dataset    string
	Percent    map[faultinject.Status]float64
	Trials     int
}

// Fig2 runs the full study grid: 5 configurations x 3 datasets.
func Fig2(o StudyOptions) (*Fig2Result, error) {
	o = o.defaults()
	res := &Fig2Result{}
	for _, field := range datasets.StudyFields(o.Scale, o.Seed) {
		for _, comp := range pressio.StudySet() {
			camp, err := faultinject.Run(faultinject.Config{
				Compressor:     comp,
				Data:           field.Data,
				Dims:           field.Dims,
				SampleFraction: 1,
				MaxTrials:      o.MaxTrials,
				Seed:           o.Seed,
				Workers:        o.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("fig2 %s/%s: %w", comp.Name(), field.Name, err)
			}
			cell := Fig2Cell{
				Compressor: comp.Name(),
				Dataset:    field.Name,
				Percent:    map[faultinject.Status]float64{},
				Trials:     len(camp.Trials),
			}
			for _, s := range faultinject.Statuses() {
				cell.Percent[s] = camp.PercentByStatus(s)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// AverageCompleted returns the mean Completed percentage over cells
// (the paper reports 95.28%).
func (r *Fig2Result) AverageCompleted() float64 {
	if len(r.Cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range r.Cells {
		sum += c.Percent[faultinject.Completed]
	}
	return sum / float64(len(r.Cells))
}

// Table renders the status distribution.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title:  "Figure 2: return-status distribution of fault-injection trials",
		Header: []string{"compressor", "dataset", "trials", "completed", "exception", "terminated", "timeout"},
		Caption: fmt.Sprintf("Average Completed: %.2f%% (paper: 95.28%%; ZFP rows 100%%).",
			r.AverageCompleted()),
	}
	for _, c := range r.Cells {
		t.AddRow(c.Compressor, c.Dataset, iS(c.Trials),
			pct(c.Percent[faultinject.Completed]),
			pct(c.Percent[faultinject.CompressorException]),
			pct(c.Percent[faultinject.Terminated]),
			pct(c.Percent[faultinject.Timeout]))
	}
	return t
}

// Fig3Result reproduces Figure 3: percent of elements violating the
// error bound per fault location on the CESM-like dataset, per mode.
type Fig3Result struct {
	Series []Fig3Series
}

// Fig3Series is one mode's per-location profile.
type Fig3Series struct {
	Compressor string
	// Points maps sampled bit position to percent incorrect (Completed
	// trials only).
	Points []Fig3Point
	// MeanPercent matches the figure's per-mode average annotation.
	MeanPercent float64
	// MeanElements is the ZFP-Rate metric (elements, not percent).
	MeanElements float64
	Ratio        float64
}

// Fig3Point is one completed trial.
type Fig3Point struct {
	Bit              int
	PercentIncorrect float64
	Elements         int
}

// fig3Modes are the modes Figure 3 plots.
var fig3Modes = []string{"SZ-ABS", "SZ-PWREL", "ZFP-ACC", "ZFP-Rate"}

// Fig3 runs the per-location profile on the CESM-like field.
func Fig3(o StudyOptions) (*Fig3Result, error) {
	o = o.defaults()
	f := datasets.CESM(32*o.Scale, 64*o.Scale, o.Seed)
	res := &Fig3Result{}
	for _, name := range fig3Modes {
		bound := 0.1
		if name == "ZFP-Rate" {
			bound = 8
		}
		comp, err := pressio.New(name, bound)
		if err != nil {
			return nil, err
		}
		camp, err := faultinject.Run(faultinject.Config{
			Compressor:     comp,
			Data:           f.Data,
			Dims:           f.Dims,
			SampleFraction: 1,
			MaxTrials:      o.MaxTrials,
			Seed:           o.Seed,
			Workers:        o.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", name, err)
		}
		s := Fig3Series{Compressor: name, Ratio: camp.Ratio}
		var sumP, sumE float64
		n := 0
		for _, tr := range camp.Trials {
			if tr.Status != faultinject.Completed {
				continue
			}
			s.Points = append(s.Points, Fig3Point{
				Bit:              tr.Bit,
				PercentIncorrect: tr.Metrics.PercentIncorrect,
				Elements:         tr.Metrics.IncorrectElements,
			})
			sumP += tr.Metrics.PercentIncorrect
			sumE += float64(tr.Metrics.IncorrectElements)
			n++
		}
		if n > 0 {
			s.MeanPercent = sumP / float64(n)
			s.MeanElements = sumE / float64(n)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Table renders per-mode averages.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title:  "Figure 3: error-bound violations per fault location (CESM-like)",
		Header: []string{"mode", "CR", "mean % incorrect", "mean elements", "max %"},
		Caption: "Paper averages: SZ-ABS 10.04%, SZ-PWREL 9.57%, ZFP-ACC 10.32%; ZFP-Rate 3.53 *elements*.\n" +
			"Shape claim: variable-length modes corrupt ~10% on average; ZFP-Rate stays within one block.",
	}
	for _, s := range r.Series {
		maxP := 0.0
		for _, p := range s.Points {
			if p.PercentIncorrect > maxP {
				maxP = p.PercentIncorrect
			}
		}
		t.AddRow(s.Compressor, f1(s.Ratio), pct(s.MeanPercent), f2(s.MeanElements), pct(maxP))
	}
	return t
}

// Fig4Result reproduces Figure 4: violation profiles at target
// compression ratios 50x, 25x, 13x, 7x for the three bounding modes.
type Fig4Result struct {
	Cells []Fig4Cell
}

// Fig4Cell is one (mode, target CR) run.
type Fig4Cell struct {
	Compressor  string
	TargetCR    float64
	AchievedCR  float64
	Bound       float64
	MeanPercent float64
	// FrontMean/BackMean split the profile at the stream midpoint,
	// quantifying the paper's "downward slope" finding.
	FrontMean float64
	BackMean  float64
}

// fig4Ratios are the paper's target compression ratios.
var fig4Ratios = []float64{50, 25, 13, 7}

// Fig4 tunes each mode to each ratio and reruns the injection study.
func Fig4(o StudyOptions) (*Fig4Result, error) {
	o = o.defaults()
	f := datasets.CESM(32*o.Scale, 64*o.Scale, o.Seed)
	res := &Fig4Result{}
	for _, name := range []string{"SZ-ABS", "SZ-PWREL", "ZFP-ACC"} {
		base, err := pressio.New(name, 0.1)
		if err != nil {
			return nil, err
		}
		for _, target := range fig4Ratios {
			tuned, achieved, err := pressio.SearchBound(base, f.Data, f.Dims, target, 0.1, 40)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s@%gx: %w", name, target, err)
			}
			camp, err := faultinject.Run(faultinject.Config{
				Compressor:     tuned,
				Data:           f.Data,
				Dims:           f.Dims,
				SampleFraction: 1,
				MaxTrials:      o.MaxTrials,
				Seed:           o.Seed,
				Workers:        o.Workers,
			})
			if err != nil {
				return nil, err
			}
			cell := Fig4Cell{Compressor: name, TargetCR: target, AchievedCR: achieved, Bound: tuned.Bound()}
			var sum, front, back float64
			var n, nf, nb int
			mid := camp.CompressedSize * 4 // midpoint in bits
			for _, tr := range camp.Trials {
				if tr.Status != faultinject.Completed {
					continue
				}
				p := tr.Metrics.PercentIncorrect
				sum += p
				n++
				if tr.Bit < mid {
					front += p
					nf++
				} else {
					back += p
					nb++
				}
			}
			if n > 0 {
				cell.MeanPercent = sum / float64(n)
			}
			if nf > 0 {
				cell.FrontMean = front / float64(nf)
			}
			if nb > 0 {
				cell.BackMean = back / float64(nb)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Table renders the loss-level sweep.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:  "Figure 4: violations at increasing loss levels (CESM-like)",
		Header: []string{"mode", "target CR", "achieved CR", "bound", "mean % incorrect", "front-half %", "back-half %"},
		Caption: "Paper shape: higher CRs mask more soft errors (looser bounds absorb them);\n" +
			"at 13x/7x the profile slopes downward (front-of-stream flips corrupt more).",
	}
	for _, c := range r.Cells {
		t.AddRow(c.Compressor, f1(c.TargetCR), f1(c.AchievedCR), eg(c.Bound),
			pct(c.MeanPercent), pct(c.FrontMean), pct(c.BackMean))
	}
	return t
}

// Fig5Result reproduces Figure 5: average data-integrity metrics for
// Completed trials vs controls.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5Row is one configuration's aggregate.
type Fig5Row struct {
	Compressor string
	Dataset    string

	ControlBWMBs  float64
	CorruptBWMBs  float64
	CorruptBWStd  float64
	ControlMaxErr float64
	MeanMaxErr    float64 // mean over corrupt trials
	WorstMaxErr   float64
	ControlPSNR   float64
	MeanPSNR      float64
	MinPSNR       float64
}

// Fig5 gathers bandwidth / max-diff / PSNR statistics over every
// (configuration, dataset) pair, as the paper's figure does.
func Fig5(o StudyOptions) (*Fig5Result, error) {
	o = o.defaults()
	res := &Fig5Result{}
	for _, f := range datasets.StudyFields(o.Scale, o.Seed) {
		if err := fig5Dataset(o, f, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func fig5Dataset(o StudyOptions, f *datasets.Field, res *Fig5Result) error {
	for _, comp := range pressio.StudySet() {
		camp, err := faultinject.Run(faultinject.Config{
			Compressor:     comp,
			Data:           f.Data,
			Dims:           f.Dims,
			SampleFraction: 1,
			MaxTrials:      o.MaxTrials,
			Seed:           o.Seed,
			Workers:        o.Workers,
		})
		if err != nil {
			return err
		}
		row := Fig5Row{
			Compressor:    comp.Name(),
			Dataset:       f.Name,
			ControlBWMBs:  camp.ControlBWMBs,
			ControlMaxErr: camp.Control.MaxDiff,
			ControlPSNR:   camp.Control.PSNR,
			MinPSNR:       math.Inf(1),
		}
		var bws []float64
		var sumMax, sumPSNR float64
		n := 0
		for _, tr := range camp.Trials {
			if tr.Status != faultinject.Completed {
				continue
			}
			bws = append(bws, tr.BandwidthMBs)
			m := tr.Metrics.MaxDiff
			if math.IsNaN(m) || math.IsInf(m, 0) {
				m = math.MaxFloat64
			}
			sumMax += m
			if m > row.WorstMaxErr {
				row.WorstMaxErr = m
			}
			p := tr.Metrics.PSNR
			if !math.IsInf(p, 0) && !math.IsNaN(p) {
				sumPSNR += p
				if p < row.MinPSNR {
					row.MinPSNR = p
				}
			}
			n++
		}
		if n > 0 {
			row.MeanMaxErr = sumMax / float64(n)
			row.MeanPSNR = sumPSNR / float64(n)
			row.CorruptBWMBs, row.CorruptBWStd = meanStd(bws)
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Table renders the integrity metrics.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title: "Figure 5: average data-integrity metrics (Completed trials vs control)",
		Header: []string{"mode", "dataset", "ctrl BW", "corrupt BW", "BW stddev", "ctrl maxdiff",
			"mean maxdiff", "ctrl PSNR", "mean PSNR", "min PSNR"},
		Caption: "Paper shape: corrupt-trial mean bandwidth near control but higher variance;\n" +
			"max difference explodes past the bound; PSNR drops except for ZFP-Rate.",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Compressor, row.Dataset, f1(row.ControlBWMBs), f1(row.CorruptBWMBs), f1(row.CorruptBWStd),
			eg(row.ControlMaxErr), eg(row.MeanMaxErr), f1(row.ControlPSNR), f1(row.MeanPSNR), f1(row.MinPSNR))
	}
	return t
}
