package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// tiny keeps experiment tests fast.
var tiny = StudyOptions{Scale: 1, MaxTrials: 60, Seed: 3, Workers: 1}

func TestFig1(t *testing.T) {
	r, err := Fig1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) == 0 {
		t.Fatal("no completed trials")
	}
	// Severity must vary by location: the worst trial well above the best.
	lo := r.Trials[0].PercentIncorrect
	hi := r.Trials[len(r.Trials)-1].PercentIncorrect
	if hi < lo+5 {
		t.Fatalf("expected location-dependent severity, got range [%.2f, %.2f]", lo, hi)
	}
	// Severe cases corrupt large fractions (paper: up to 99.4%).
	if hi < 20 {
		t.Fatalf("worst case only %.1f%% incorrect; expected severe corruption", hi)
	}
	var buf bytes.Buffer
	if err := r.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("table must carry the figure title")
	}
}

func TestFig2ShapeClaims(t *testing.T) {
	r, err := Fig2(StudyOptions{Scale: 1, MaxTrials: 60, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 15 {
		t.Fatalf("%d cells, want 5 compressors x 3 datasets", len(r.Cells))
	}
	// Paper shape 1: the majority of trials complete.
	if avg := r.AverageCompleted(); avg < 60 {
		t.Fatalf("average completed %.1f%%, expected a dominant majority", avg)
	}
	// Paper shape 2: ZFP-Rate rows complete ~100% (fixed-size blocks).
	for _, c := range r.Cells {
		if c.Compressor == "ZFP-Rate" && c.Percent[faultinject.Completed] < 90 {
			t.Fatalf("ZFP-Rate/%s completed only %.1f%%", c.Dataset, c.Percent[faultinject.Completed])
		}
	}
	var buf bytes.Buffer
	if err := r.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ZFP-Rate") {
		t.Fatal("table missing rows")
	}
}

func TestFig3ShapeClaims(t *testing.T) {
	r, err := Fig3(StudyOptions{Scale: 1, MaxTrials: 120, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig3Series{}
	for _, s := range r.Series {
		byName[s.Compressor] = s
	}
	// Paper shape: variable-length modes average >> ZFP-Rate's, and
	// ZFP-Rate stays within one block (<= 16 elements in 2D).
	rate := byName["ZFP-Rate"]
	for _, p := range rate.Points {
		if p.Elements > 16 {
			t.Fatalf("ZFP-Rate trial corrupted %d elements", p.Elements)
		}
	}
	for _, name := range []string{"SZ-ABS", "ZFP-ACC"} {
		s := byName[name]
		if s.MeanPercent < 1 {
			t.Fatalf("%s mean %.2f%%: expected substantial propagation", name, s.MeanPercent)
		}
		if s.MeanPercent <= rate.MeanPercent {
			t.Fatalf("%s must propagate more than ZFP-Rate", name)
		}
	}
}

func TestFig6(t *testing.T) {
	r, err := Fig6([]int{1, 2}, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatal("want 2 rows")
	}
	if r.Rows[1].Configs <= r.Rows[0].Configs {
		t.Fatal("more threads must train more configurations")
	}
	var buf bytes.Buffer
	if err := r.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("bad table")
	}
}

func TestFig89ShapeClaims(t *testing.T) {
	r, err := Fig89([]int{1}, 1<<20, 6)
	if err != nil {
		t.Fatal(err)
	}
	enc := map[string]float64{}
	for _, row := range r.Rows {
		enc[row.Config] = row.EncMBs
	}
	// Paper shape: parity >> hamming/secded >> RS on encode.
	if !(enc["parity8"] > enc["secded64"]) {
		t.Fatalf("parity (%.0f) must out-encode secded (%.0f)", enc["parity8"], enc["secded64"])
	}
	if !(enc["secded64"] > enc["rs-k241-m15"]) {
		t.Fatalf("secded (%.0f) must out-encode RS (%.0f)", enc["secded64"], enc["rs-k241-m15"])
	}
}

func TestFig10ShapeClaims(t *testing.T) {
	r, err := Fig10([]int{1}, 1<<20, []int{1, 20000}, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec := map[string]map[int]float64{}
	for _, row := range r.Rows {
		if dec[row.Config] == nil {
			dec[row.Config] = map[int]float64{}
		}
		dec[row.Config][row.Errors] = row.DecMBs
	}
	// Heavy error load must slow Reed-Solomon sharply (per-device
	// rebuild cost — the paper's headline Figure-10 effect). Hamming
	// and SEC-DED syndrome repair is one table lookup in this
	// implementation, so their drop is within timing noise; only
	// require they never speed up beyond noise.
	rs := dec["rs-m15"]
	if rs[20000] >= rs[1]/2 {
		t.Fatalf("RS under 20k errors decoded %.1f MB/s vs %.1f clean; expected a sharp drop", rs[20000], rs[1])
	}
	for cfg, m := range dec {
		if m[20000] > m[1]*2 {
			t.Fatalf("%s: error load speeding decode up (%.1f vs %.1f) is implausible", cfg, m[20000], m[1])
		}
	}
}

func TestFig11ConstraintTracking(t *testing.T) {
	r, err := Fig11(2, 1, 8, []float64{0.05, 0.2, 0.5, 0.9}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range r.MemRows {
		if row.ChoiceOverhead > row.TargetOverhead {
			t.Fatalf("target %.2f: choice overhead %.3f over budget", row.TargetOverhead, row.ChoiceOverhead)
		}
		if row.ChoiceOverhead < prev {
			t.Fatal("overhead must be non-decreasing in the budget")
		}
		prev = row.ChoiceOverhead
	}
	// A 0.9 budget must buy much more protection than 0.05.
	if r.MemRows[3].ChoiceOverhead < 10*r.MemRows[0].ChoiceOverhead {
		t.Fatalf("budget scaling too flat: %.3f vs %.3f",
			r.MemRows[0].ChoiceOverhead, r.MemRows[3].ChoiceOverhead)
	}
	var buf bytes.Buffer
	if err := r.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.BWTable().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Fatal("bad tables")
	}
}

func TestFig12StepFunctions(t *testing.T) {
	r, err := Fig12(1, 1, 9, []float64{0.05, 0.11, 0.2, 0.63, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Hamming has exactly two plateaus in the space (10.9% and 50%).
	seen := map[string]map[float64]bool{}
	for _, row := range r.MemRows {
		if seen[row.Method] == nil {
			seen[row.Method] = map[float64]bool{}
		}
		seen[row.Method][row.TrueOverhead] = true
	}
	if n := len(seen["ARC_HAMMING"]); n > 2 {
		t.Fatalf("hamming showed %d plateaus, want <= 2 (step function)", n)
	}
	if n := len(seen["ARC_RS"]); n < 4 {
		t.Fatalf("RS showed only %d levels; should track targets nearly continuously", n)
	}
}

func TestSec63AllCorrected(t *testing.T) {
	rows, err := Sec63(1, 1, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(rows))
	}
	for _, r := range rows {
		if !strings.HasPrefix(r.Config, "secded") {
			t.Fatalf("%s: config %s, want secded (1 err/MB)", r.Dataset, r.Config)
		}
		if r.Corrected != r.Trials {
			t.Fatalf("%s: corrected %d/%d; ARC must fix every single flip", r.Dataset, r.Corrected, r.Trials)
		}
		if !r.BurstCorrected {
			t.Fatalf("%s: burst not corrected by %s", r.Dataset, r.BurstConfig)
		}
	}
	var buf bytes.Buffer
	if err := Sec63Table(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Section 6.3") {
		t.Fatal("bad table")
	}
}

func TestSec64Report(t *testing.T) {
	r := Sec64()
	if len(r.Recs) != 2 {
		t.Fatal("want Cielo and Hopper")
	}
	var buf bytes.Buffer
	if err := r.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Cielo", "Hopper", "1.90", "5.43"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Caption: "c"}
	tab.AddRow("xxx", "y")
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T ==", "xxx", "bb", "c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExtResilienceMatrix(t *testing.T) {
	r, err := ExtResilienceMatrix(16<<10, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(cfg, inj string) ExtMatrixRow {
		for _, row := range r.Rows {
			if row.Config == cfg && row.Injector == inj {
				return row
			}
		}
		t.Fatalf("missing cell %s/%s", cfg, inj)
		return ExtMatrixRow{}
	}
	// Parity never recovers and never stays silent on single flips.
	p := cell("parity8", "single-bit")
	if p.Recovered != 0 || p.Silent != 0 {
		t.Fatalf("parity single-bit: %+v", p)
	}
	// SEC-DED recovers all single flips with zero silent corruption.
	s := cell("secded64", "single-bit")
	if s.Recovered != s.Trials {
		t.Fatalf("secded single-bit: %+v", s)
	}
	// RS recovers all bursts.
	b := cell("rs-m15", "burst-64B")
	if b.Recovered != b.Trials {
		t.Fatalf("rs burst: %+v", b)
	}
	// SEC-DED under 64-byte bursts must detect (not silently corrupt).
	sb := cell("secded64", "burst-64B")
	if sb.Silent != 0 {
		t.Fatalf("secded burst produced silent corruption: %+v", sb)
	}
	var buf bytes.Buffer
	if err := r.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recovery matrix") {
		t.Fatal("bad table")
	}
}

func TestExtMatrixInterleavedSECDED(t *testing.T) {
	r, err := ExtResilienceMatrix(64<<10, 30, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Config != "ilsecded256" {
			continue
		}
		// Interleaved SEC-DED recovers singles AND 64-byte bursts.
		if row.Injector == "single-bit" && row.Recovered != row.Trials {
			t.Fatalf("ilsecded single-bit: %+v", row)
		}
		if row.Injector == "burst-64B" && row.Recovered != row.Trials {
			t.Fatalf("ilsecded burst: %+v", row)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}, Caption: "ignored in csv"}
	tab.AddRow("x,y", "2")
	tab.AddRow("plain", "3")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",2\nplain,3\n"
	if buf.String() != want {
		t.Fatalf("csv:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestExtCrossover(t *testing.T) {
	r, err := ExtCrossover(128<<10, 10, 14)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cfg string, bs int) ExtCrossoverRow {
		for _, row := range r.Rows {
			if row.Config == cfg && row.BurstBytes == bs {
				return row
			}
		}
		t.Fatalf("missing %s/%d", cfg, bs)
		return ExtCrossoverRow{}
	}
	// ilsecded64 recovers <=64-byte bursts, fails 4096-byte ones.
	if row := get("ilsecded64", 16); row.Recovered != row.Trials {
		t.Fatalf("ilsecded64/16B: %+v", row)
	}
	if row := get("ilsecded64", 4096); row.Recovered != 0 {
		t.Fatalf("ilsecded64/4096B should fail: %+v", row)
	}
	// ilsecded1024 covers 512-byte bursts.
	if row := get("ilsecded1024", 512); row.Recovered != row.Trials {
		t.Fatalf("ilsecded1024/512B: %+v", row)
	}
	// RS m=15 with adaptive... here default 1024-byte devices: a
	// 4096-byte burst spans at most 5 devices < 15 -> recovered.
	if row := get("rs-m15", 4096); row.Recovered != row.Trials {
		t.Fatalf("rs-m15/4096B: %+v", row)
	}
	// The cheap method is cheaper than like-for-like RS protection.
	if get("ilsecded1024", 16).Overhead >= get("rs-m64", 16).Overhead {
		t.Fatal("ilsecded must undercut heavy RS overhead")
	}
	var buf bytes.Buffer
	if err := r.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crossover") {
		t.Fatal("bad table")
	}
}

func TestFig5AllDatasets(t *testing.T) {
	r, err := Fig5(StudyOptions{Scale: 1, MaxTrials: 30, Seed: 15, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 15 {
		t.Fatalf("%d rows, want 5 modes x 3 datasets", len(r.Rows))
	}
	seen := map[string]bool{}
	for _, row := range r.Rows {
		seen[row.Dataset] = true
	}
	if len(seen) != 3 {
		t.Fatalf("datasets %v", seen)
	}
	var buf bytes.Buffer
	if err := r.Table().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NYX-T") {
		t.Fatal("table missing dataset column")
	}
}
