package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/faultinject"
)

// Fig6Result reproduces Figure 6: ARC training cost and configuration
// count versus the maximum thread count.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6Row is one max-thread setting.
type Fig6Row struct {
	MaxThreads   int
	TrainSeconds float64
	Configs      int // (configuration, threads) points trained
}

// Fig6 trains fresh engines (no cache) at increasing thread caps.
func Fig6(maxThreads []int, sampleBytes int) (*Fig6Result, error) {
	if len(maxThreads) == 0 {
		maxThreads = []int{1, 2, 4, 8}
	}
	if sampleBytes <= 0 {
		sampleBytes = 256 << 10
	}
	res := &Fig6Result{}
	for _, mt := range maxThreads {
		t0 := time.Now()
		eng, err := core.NewEngine(core.EngineOptions{MaxThreads: mt, CacheDir: "-", SampleBytes: sampleBytes})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(t0).Seconds()
		res.Rows = append(res.Rows, Fig6Row{
			MaxThreads:   mt,
			TrainSeconds: elapsed,
			Configs:      eng.TrainedPoints(),
		})
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the training-cost sweep.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:  "Figure 6: ARC training cost vs maximum threads",
		Header: []string{"max threads", "train time (s)", "configs trained"},
		Caption: "Paper shape: more threads -> more configurations trained, with\n" +
			"logarithmic time growth (each step adds one thread tier).",
	}
	for _, row := range r.Rows {
		t.AddRow(iS(row.MaxThreads), f2(row.TrainSeconds), iS(row.Configs))
	}
	return t
}

// ScalingConfigs are the four ECC methods Figures 8-10 sweep, at the
// parameters the ARC engine defaults to for each family.
func ScalingConfigs() []core.Config {
	return []core.Config{
		{Method: ecc.MethodParity, Param: 8},
		{Method: ecc.MethodHamming, Param: 64},
		{Method: ecc.MethodSECDED, Param: 64},
		{Method: ecc.MethodReedSolomon, Param: 15},
	}
}

// Fig89Result reproduces Figures 8 and 9: encode and decode throughput
// versus thread count per ECC method.
type Fig89Result struct {
	Rows []Fig89Row
}

// Fig89Row is one (config, threads) measurement.
type Fig89Row struct {
	Config  string
	Threads int
	EncMBs  float64
	DecMBs  float64
}

// Fig89 measures encode/decode throughput over a thread sweep.
func Fig89(threadCounts []int, payloadBytes int, seed int64) (*Fig89Result, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4}
	}
	if payloadBytes <= 0 {
		payloadBytes = 4 << 20
	}
	data := randomBytes(payloadBytes, seed)
	res := &Fig89Result{}
	for _, cfg := range ScalingConfigs() {
		for _, th := range threadCounts {
			code, err := cfg.Build(th)
			if err != nil {
				return nil, err
			}
			encMBs, decMBs, err := timeCode(code, data)
			if err != nil {
				return nil, fmt.Errorf("fig8/9 %s@%d: %w", cfg, th, err)
			}
			res.Rows = append(res.Rows, Fig89Row{Config: cfg.String(), Threads: th, EncMBs: encMBs, DecMBs: decMBs})
		}
	}
	return res, nil
}

// Speedup returns the max-thread/1-thread encode and decode speedups
// per config.
func (r *Fig89Result) Speedup() map[string][2]float64 {
	base := map[string][2]float64{}
	best := map[string][2]float64{}
	for _, row := range r.Rows {
		if row.Threads == 1 {
			base[row.Config] = [2]float64{row.EncMBs, row.DecMBs}
		}
		b := best[row.Config]
		if row.EncMBs > b[0] {
			b[0] = row.EncMBs
		}
		if row.DecMBs > b[1] {
			b[1] = row.DecMBs
		}
		best[row.Config] = b
	}
	out := map[string][2]float64{}
	for cfg, b := range best {
		if bs, ok := base[cfg]; ok && bs[0] > 0 && bs[1] > 0 {
			out[cfg] = [2]float64{b[0] / bs[0], b[1] / bs[1]}
		}
	}
	return out
}

// Table renders the scalability sweep.
func (r *Fig89Result) Table() *Table {
	t := &Table{
		Title:  "Figures 8-9: ECC encode/decode throughput vs threads",
		Header: []string{"config", "threads", "encode MB/s", "decode MB/s"},
		Caption: "Paper shape: parity >> hamming/secded >> reed-solomon encode throughput;\n" +
			"near-linear thread scaling (on multi-core hosts).",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config, iS(row.Threads), f1(row.EncMBs), f1(row.DecMBs))
	}
	return t
}

// Fig10Result reproduces Figure 10: decode throughput with 1 and with
// 100,000 correctable injected errors.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10Row is one (config, threads, errors) decode measurement.
type Fig10Row struct {
	Config  string
	Threads int
	Errors  int
	DecMBs  float64
}

// Fig10 injects correctable errors and measures the decode cost. Only
// correcting methods run (the paper drops parity here too).
func Fig10(threadCounts []int, payloadBytes int, errorCounts []int, seed int64) (*Fig10Result, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4}
	}
	if payloadBytes <= 0 {
		payloadBytes = 4 << 20
	}
	if len(errorCounts) == 0 {
		errorCounts = []int{1, 100000}
	}
	data := randomBytes(payloadBytes, seed)
	res := &Fig10Result{}
	for _, cfg := range ScalingConfigs() {
		if cfg.Method == ecc.MethodParity {
			continue
		}
		for _, nerr := range errorCounts {
			for _, th := range threadCounts {
				code, err := cfg.Build(th)
				if err != nil {
					return nil, err
				}
				enc := code.Encode(data)
				injectCorrectable(enc, cfg, len(data), nerr, seed)
				// Best-of-N over a scratch copy: decode must see the
				// injected errors every repetition, and the minimum
				// discards scheduler hiccups that otherwise swamp the
				// repair-cost signal this figure is about.
				scratch := make([]byte, len(enc))
				var best time.Duration
				for rep := 0; rep < timingReps; rep++ {
					copy(scratch, enc)
					t0 := time.Now()
					//arcvet:ignore integrityflow repair-cost timing loop; the figure measures latency, not correction counts
					_, _, derr := code.Decode(scratch, len(data))
					el := time.Since(t0)
					if derr != nil {
						return nil, fmt.Errorf("fig10 %s@%d/%d errors: decode failed: %v", cfg, th, nerr, derr)
					}
					if rep == 0 || el < best {
						best = el
					}
				}
				res.Rows = append(res.Rows, Fig10Row{
					Config:  cfg.String(),
					Threads: th,
					Errors:  nerr,
					DecMBs:  mbs(len(data), best),
				})
			}
		}
	}
	return res, nil
}

// injectCorrectable flips bits so every error stays within the code's
// correction ability: for Hamming/SEC-DED one flip per codeword; for
// Reed-Solomon flips confined to at most M devices per stripe.
func injectCorrectable(enc []byte, cfg core.Config, origLen, count int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	switch cfg.Method {
	case ecc.MethodHamming, ecc.MethodSECDED:
		blocks := origLen / 8 // 64-bit data blocks in the data region
		if blocks == 0 {
			return
		}
		if count > blocks {
			count = blocks
		}
		// One flip in each of `count` distinct data blocks.
		step := blocks / count
		if step == 0 {
			step = 1
		}
		for i := 0; i < count; i++ {
			block := (i * step) % blocks
			bit := block*64 + rng.Intn(64)
			faultinject.FlipBitInPlace(enc, bit)
		}
	case ecc.MethodReedSolomon:
		// Spread flips across the first M data devices of each stripe
		// (never more than M, so every stripe stays correctable).
		// Touching many devices per stripe is what makes the error
		// load expensive: each corrupt device costs a K-source GF(256)
		// rebuild, which is the repair cost behind the paper's
		// Figure-10 claim that one error collapses RS throughput and
		// 100k errors collapse it further. Flips confined to a single
		// device (the old behavior) made 20k errors cost about the
		// same as one, which is not the regime the figure describes.
		devSize := 1024
		stripeEnc := 256*devSize + 256*4
		stripes := len(enc) / stripeEnc
		if stripes == 0 {
			return
		}
		perStripe := count / stripes
		if perStripe == 0 {
			perStripe = 1
		}
		placed := 0
		for s := 0; s < stripes && placed < count; s++ {
			base := s * stripeEnc
			for i := 0; i < perStripe && placed < count; i++ {
				dev := i % cfg.Param
				bit := (base+dev*devSize)*8 + rng.Intn(devSize*8)
				faultinject.FlipBitInPlace(enc, bit)
				placed++
			}
		}
	}
}

// SpeedupDrop returns decode speedup (max threads vs 1) per config and
// error count — the paper's headline Figure-10 observation is RS's
// collapse from 18.3x to 2.7x with one error.
func (r *Fig10Result) SpeedupDrop() map[string]map[int]float64 {
	type key struct {
		cfg     string
		errs    int
		threads int
	}
	vals := map[key]float64{}
	maxTh := 0
	for _, row := range r.Rows {
		vals[key{row.Config, row.Errors, row.Threads}] = row.DecMBs
		if row.Threads > maxTh {
			maxTh = row.Threads
		}
	}
	out := map[string]map[int]float64{}
	for k, v := range vals {
		if k.threads != maxTh {
			continue
		}
		base := vals[key{k.cfg, k.errs, 1}]
		if base <= 0 {
			continue
		}
		if out[k.cfg] == nil {
			out[k.cfg] = map[int]float64{}
		}
		out[k.cfg][k.errs] = v / base
	}
	return out
}

// Table renders the error-load sweep.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title:  "Figure 10: decode throughput under correctable error load",
		Header: []string{"config", "errors", "threads", "decode MB/s"},
		Caption: "Paper shape: 1 error barely affects Hamming/SEC-DED but drops RS sharply\n" +
			"(repair cost); 100k errors collapse every method yet all still correct.",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config, iS(row.Errors), iS(row.Threads), f1(row.DecMBs))
	}
	return t
}

func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// timingReps is the repetition count for throughput measurements;
// reporting the fastest of N runs filters out GC pauses and scheduler
// preemption, which on shared CI hosts can distort a single run by
// more than the cross-method gaps Figures 8-10 assert.
const timingReps = 3

func timeCode(code ecc.Code, data []byte) (encMBs, decMBs float64, err error) {
	var encBest, decBest time.Duration
	for rep := 0; rep < timingReps; rep++ {
		t0 := time.Now()
		enc := code.Encode(data)
		encT := time.Since(t0)
		t1 := time.Now()
		//arcvet:ignore integrityflow throughput timing on uncorrupted bytes; the report is zero by construction
		_, _, derr := code.Decode(enc, len(data))
		decT := time.Since(t1)
		if derr != nil {
			return 0, 0, derr
		}
		if rep == 0 || encT < encBest {
			encBest = encT
		}
		if rep == 0 || decT < decBest {
			decBest = decT
		}
	}
	return mbs(len(data), encBest), mbs(len(data), decBest), nil
}

func mbs(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / (1 << 20) / d.Seconds()
}
