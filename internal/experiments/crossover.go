package experiments

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
)

// ExtCrossoverResult maps the burst-protection trade space between
// ARC's two burst-capable methods: Reed-Solomon (repairs up to M whole
// devices per stripe at m/k overhead) and interleaved SEC-DED (repairs
// one burst up to the interleave depth at a flat 12.5%). The paper
// picks RS for burst regimes; the crossover shows where the cheaper
// extension method suffices.
type ExtCrossoverResult struct {
	Rows []ExtCrossoverRow
}

// ExtCrossoverRow is one (config, burst size) cell.
type ExtCrossoverRow struct {
	Config     string
	Overhead   float64
	EncMBs     float64
	BurstBytes int
	Trials     int
	Recovered  int
}

// ExtCrossover sweeps burst sizes against both methods.
func ExtCrossover(payloadBytes, trials int, seed int64) (*ExtCrossoverResult, error) {
	if payloadBytes <= 0 {
		payloadBytes = 256 << 10
	}
	if trials <= 0 {
		trials = 20
	}
	payload := randomBytes(payloadBytes, seed)
	configs := []core.Config{
		{Method: ecc.MethodInterleavedSECDED, Param: 64},
		{Method: ecc.MethodInterleavedSECDED, Param: 1024},
		{Method: ecc.MethodReedSolomon, Param: 15},
		{Method: ecc.MethodReedSolomon, Param: 64},
	}
	burstSizes := []int{16, 64, 512, 4096}
	res := &ExtCrossoverResult{}
	rng := rand.New(rand.NewSource(seed))
	for _, cfg := range configs {
		code, err := cfg.Build(1)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		protected := code.Encode(payload)
		encMBs := mbs(len(payload), time.Since(t0))
		for _, bs := range burstSizes {
			row := ExtCrossoverRow{
				Config:     cfg.String(),
				Overhead:   cfg.Overhead(),
				EncMBs:     encMBs,
				BurstBytes: bs,
				Trials:     trials,
			}
			for trial := 0; trial < trials; trial++ {
				mut := append([]byte(nil), protected...)
				off := rng.Intn(len(mut) - bs)
				for i := 0; i < bs; i++ {
					mut[off+i] ^= byte(1 + rng.Intn(255))
				}
				//arcvet:ignore integrityflow campaign verdicts on recovered bytes vs ground truth; per-trial reports are not aggregated
				got, _, derr := code.Decode(mut, len(payload))
				if derr == nil && equal(got, payload) {
					row.Recovered++
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Table renders the crossover map.
func (r *ExtCrossoverResult) Table() *Table {
	t := &Table{
		Title:  "Extension: burst-protection crossover — interleaved SEC-DED vs Reed-Solomon",
		Header: []string{"config", "overhead", "enc MB/s", "burst bytes", "recovered"},
		Caption: "Shape: ilsecded-D recovers bursts up to D bytes at a flat 12.5%;\n" +
			"RS recovers bursts up to M devices (M x device size) at m/k overhead.\n" +
			"Below the interleave depth the cheap method wins; beyond it only RS survives.",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config, f3(row.Overhead), f1(row.EncMBs), iS(row.BurstBytes),
			iS(row.Recovered)+"/"+iS(row.Trials))
	}
	return t
}
