package experiments

import (
	"bytes"
	"fmt"
	mrand "math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ecc"
	"repro/internal/failmodel"
	"repro/internal/faultinject"
	"repro/internal/pressio"
	"repro/internal/sz"
)

// buildEngine constructs a throwaway engine with a small training
// sample — experiments retrain per run to stay self-contained.
func buildEngine(maxThreads, sampleBytes int) (*core.Engine, error) {
	if sampleBytes <= 0 {
		sampleBytes = 256 << 10
	}
	return core.NewEngine(core.EngineOptions{MaxThreads: maxThreads, CacheDir: "-", SampleBytes: sampleBytes})
}

// studyPayload compresses the CESM-like field with SZ-ABS eps=0.1,
// the input Figures 11-12 protect. Compressed checkpoints this small
// would exaggerate fixed per-stripe costs, so the stream is repeated
// to at least 512 KiB — the paper's CESM input is a 25.82 MB field
// whose compressed form is far beyond that.
func studyPayload(scale int, seed int64) ([]byte, error) {
	f := datasets.CESM(32*scale, 64*scale, seed)
	one, err := sz.Compress(f.Data, f.Dims, sz.Options{Mode: sz.ModeABS, ErrorBound: 0.1})
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 0, 512<<10+len(one))
	for len(payload) < 512<<10 {
		payload = append(payload, one...)
	}
	return payload, nil
}

// Fig11Result reproduces Figure 11: target vs observed overhead and
// throughput when ARC may use any ECC.
type Fig11Result struct {
	MemRows []Fig11MemRow
	BWRows  []Fig11BWRow
}

// Fig11MemRow is one memory-constraint point.
type Fig11MemRow struct {
	TargetOverhead   float64
	ChoiceOverhead   float64
	ObservedOverhead float64
	Config           string
}

// Fig11BWRow is one throughput-constraint point.
type Fig11BWRow struct {
	TargetMBs    float64
	PredictedMBs float64
	ObservedMBs  float64
	Config       string
	Threads      int
}

// Fig11 sweeps memory and throughput constraints with ARC_ANY_ECC.
func Fig11(maxThreads, scale int, seed int64, memTargets, bwTargets []float64) (*Fig11Result, error) {
	if len(memTargets) == 0 {
		memTargets = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	eng, err := buildEngine(maxThreads, 0)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if len(bwTargets) == 0 {
		bwTargets = defaultBWTargets(eng)
	}
	payload, err := studyPayload(scale, seed)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for _, mem := range memTargets {
		er, err := eng.Encode(payload, mem, core.AnyBW, core.AnyECC)
		if err != nil {
			return nil, err
		}
		res.MemRows = append(res.MemRows, Fig11MemRow{
			TargetOverhead:   mem,
			ChoiceOverhead:   er.Choice.Overhead,
			ObservedOverhead: er.ActualOverhead,
			Config:           er.Choice.Config.String(),
		})
	}
	for _, bw := range bwTargets {
		choice, err := eng.Optimizer().Joint(core.AnyMem, bw, core.AnyECC)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := eng.EncodeWith(payload, choice); err != nil {
			return nil, err
		}
		observed := mbs(len(payload), time.Since(t0))
		res.BWRows = append(res.BWRows, Fig11BWRow{
			TargetMBs:    bw,
			PredictedMBs: choice.PredictedEncMBs,
			ObservedMBs:  observed,
			Config:       choice.Config.String(),
			Threads:      choice.Threads,
		})
	}
	return res, nil
}

// defaultBWTargets derives a sweep spanning the machine's trained
// range, so the experiment adapts to slow and fast hosts alike.
func defaultBWTargets(eng *core.Engine) []float64 {
	lo, hi := 1e18, 0.0
	for _, e := range eng.Table().Entries {
		if e.EncMBs < lo {
			lo = e.EncMBs
		}
		if e.EncMBs > hi {
			hi = e.EncMBs
		}
	}
	if hi <= lo {
		return []float64{1}
	}
	var ts []float64
	for f := lo; f < hi; f *= 4 {
		ts = append(ts, f)
	}
	return ts
}

// Table renders both sweeps.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title:  "Figure 11a: ARC_ANY_ECC memory constraint — target vs observed",
		Header: []string{"target", "choice overhead", "observed overhead", "config"},
		Caption: "Paper shape: ARC tracks the budget from below, switching configurations as the\n" +
			"budget grows (0.2 -> RS m=15 at 19.5%; 0.9 -> RS m=103 at 88.5% in the paper).",
	}
	for _, row := range r.MemRows {
		t.AddRow(f2(row.TargetOverhead), f3(row.ChoiceOverhead), f3(row.ObservedOverhead), row.Config)
	}
	return t
}

// BWTable renders the throughput sweep.
func (r *Fig11Result) BWTable() *Table {
	t := &Table{
		Title:  "Figure 11b: ARC_ANY_ECC throughput constraint — target vs observed",
		Header: []string{"target MB/s", "predicted MB/s", "observed MB/s", "config", "threads"},
		Caption: "Paper shape: ARC meets the bound with the fewest threads that suffice,\n" +
			"switching to faster methods as the bound rises (0.5 MB/s -> RS; 300 MB/s -> SEC-DED).",
	}
	for _, row := range r.BWRows {
		t.AddRow(f2(row.TargetMBs), f2(row.PredictedMBs), f2(row.ObservedMBs), row.Config, iS(row.Threads))
	}
	return t
}

// Fig12Result reproduces Figure 12: the same sweeps with the
// resiliency constraint pinning ARC to a single ECC method.
type Fig12Result struct {
	MemRows []Fig12MemRow
	BWRows  []Fig12BWRow
}

// Fig12MemRow is one (method, target) memory point.
type Fig12MemRow struct {
	Method         string
	TargetOverhead float64
	TrueOverhead   float64
	Config         string
	OverBudget     bool
}

// Fig12BWRow is one (method, target) throughput point.
type Fig12BWRow struct {
	Method     string
	TargetMBs  float64
	TrueMBs    float64
	Config     string
	Threads    int
	UnderBound bool
}

// fig12Methods lists the four single-method constraints.
var fig12Methods = []ecc.Method{ecc.MethodParity, ecc.MethodHamming, ecc.MethodSECDED, ecc.MethodReedSolomon}

// Fig12 sweeps targets per single-ECC resiliency constraint.
func Fig12(maxThreads, scale int, seed int64, memTargets []float64) (*Fig12Result, error) {
	if len(memTargets) == 0 {
		memTargets = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	eng, err := buildEngine(maxThreads, 0)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	payload, err := studyPayload(scale, seed)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{}
	for _, m := range fig12Methods {
		rcons := core.Resiliency{Methods: []ecc.Method{m}}
		for _, mem := range memTargets {
			choice, err := eng.Optimizer().Memory(mem, rcons)
			if err != nil {
				return nil, err
			}
			res.MemRows = append(res.MemRows, Fig12MemRow{
				Method:         m.String(),
				TargetOverhead: mem,
				TrueOverhead:   choice.Overhead,
				Config:         choice.Config.String(),
				OverBudget:     choice.OverBudget,
			})
		}
		for _, bw := range defaultBWTargets(eng) {
			choice, err := eng.Optimizer().Throughput(bw, rcons)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			if _, err := eng.EncodeWith(payload, choice); err != nil {
				return nil, err
			}
			res.BWRows = append(res.BWRows, Fig12BWRow{
				Method:     m.String(),
				TargetMBs:  bw,
				TrueMBs:    mbs(len(payload), time.Since(t0)),
				Config:     choice.Config.String(),
				Threads:    choice.Threads,
				UnderBound: choice.UnderThroughput,
			})
		}
	}
	return res, nil
}

// Table renders the single-ECC memory sweep.
func (r *Fig12Result) Table() *Table {
	t := &Table{
		Title:  "Figure 12a: single-ECC memory constraint — target vs true overhead",
		Header: []string{"method", "target", "true overhead", "config", "over budget"},
		Caption: "Paper shape: Hamming/SEC-DED step between two plateaus; parity steps down in\n" +
			"block sizes; RS tracks the target nearly continuously; impossible budgets go over with a warning.",
	}
	for _, row := range r.MemRows {
		t.AddRow(row.Method, f2(row.TargetOverhead), f3(row.TrueOverhead), row.Config, fmt.Sprint(row.OverBudget))
	}
	return t
}

// BWTable renders the single-ECC throughput sweep.
func (r *Fig12Result) BWTable() *Table {
	t := &Table{
		Title:  "Figure 12b: single-ECC throughput constraint — target vs true throughput",
		Header: []string{"method", "target MB/s", "true MB/s", "config", "threads", "under bound"},
		Caption: "Paper shape: RS cannot meet high bounds (flagged under-bound, best effort);\n" +
			"the fast methods meet every target with few threads.",
	}
	for _, row := range r.BWRows {
		t.AddRow(row.Method, f2(row.TargetMBs), f2(row.TrueMBs), row.Config, iS(row.Threads), fmt.Sprint(row.UnderBound))
	}
	return t
}

// Sec63Result reproduces Section 6.3: rerunning the fault study with
// ARC protection (1 err/MB constraint) — every single-bit flip must be
// corrected — plus the multi-bit/burst escalation examples.
type Sec63Result struct {
	Dataset        string
	Config         string
	Trials         int
	Corrected      int
	RoundTripOK    bool
	BurstConfig    string
	BurstCorrected bool
}

// Sec63 runs the resiliency evaluation on each study dataset.
func Sec63(maxThreads, scale int, maxTrials int, seed int64) ([]Sec63Result, error) {
	if maxTrials <= 0 {
		maxTrials = 200
	}
	eng, err := buildEngine(maxThreads, 0)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	var out []Sec63Result
	for _, f := range datasets.StudyFields(scale, seed) {
		comp, err := pressio.New("SZ-ABS", 0.1)
		if err != nil {
			return nil, err
		}
		payload, err := comp.Compress(f.Data, f.Dims)
		if err != nil {
			return nil, err
		}
		enc, err := eng.Encode(payload, core.AnyMem, core.AnyBW, core.Resiliency{ErrorsPerMB: 1})
		if err != nil {
			return nil, err
		}
		r := Sec63Result{Dataset: f.Name, Config: enc.Choice.Config.String(), RoundTripOK: true}
		rng := newRand(seed)
		for trial := 0; trial < maxTrials; trial++ {
			mut := append([]byte(nil), enc.Encoded...)
			faultinject.FlipBitInPlace(mut, rng.Intn(len(mut)*8))
			dec, derr := eng.Decode(mut)
			r.Trials++
			if derr == nil && bytes.Equal(dec.Data, payload) {
				r.Corrected++
			} else {
				r.RoundTripOK = false
			}
		}
		// Multi-bit burst escalation: ARC_RS with a 0.2 budget.
		bEnc, err := eng.Encode(payload, 0.2, core.AnyBW, core.Resiliency{Caps: ecc.CorrectBurst})
		if err != nil {
			return nil, err
		}
		r.BurstConfig = bEnc.Choice.Config.String()
		mut := append([]byte(nil), bEnc.Encoded...)
		// Burst sized to half the code's per-stripe repair capacity:
		// m/2 whole devices at the stripe start.
		devSize := bEnc.Choice.Config.DeviceSizeFor(len(payload))
		burstLen := (bEnc.Choice.Config.Param / 2) * devSize
		if burstLen < 1 {
			burstLen = 1
		}
		if len(mut) < core.ContainerOverheadBytes+burstLen+1 {
			burstLen = len(mut) - core.ContainerOverheadBytes - 1
		}
		for i := 0; i < burstLen; i++ {
			mut[core.ContainerOverheadBytes+i] ^= 0xFF
		}
		dec, derr := eng.Decode(mut)
		r.BurstCorrected = derr == nil && bytes.Equal(dec.Data, payload)
		out = append(out, r)
	}
	return out, nil
}

// Sec63Table renders the resiliency rerun.
func Sec63Table(rows []Sec63Result) *Table {
	t := &Table{
		Title:  "Section 6.3: fault study rerun with ARC (resiliency = 1 err/MB)",
		Header: []string{"dataset", "config", "trials", "corrected", "burst config", "burst corrected"},
		Caption: "Paper: ARC (SEC-DED per 8 bytes) corrects 100% of injected single-bit errors;\n" +
			"Reed-Solomon configurations additionally correct multi-bit bursts.",
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, r.Config, iS(r.Trials), iS(r.Corrected), r.BurstConfig, fmt.Sprint(r.BurstCorrected))
	}
	return t
}

// Sec64Result reproduces Section 6.4: the failure-model report for
// Cielo and Hopper and the constraint recommendations.
type Sec64Result struct {
	Recs []failmodel.Recommendation
}

// Sec64 evaluates the ease-of-use scenario.
func Sec64() *Sec64Result {
	return &Sec64Result{Recs: []failmodel.Recommendation{
		failmodel.Recommend(failmodel.Cielo()),
		failmodel.Recommend(failmodel.Hopper()),
	}}
}

// Table renders the system reports.
func (r *Sec64Result) Table() *Table {
	t := &Table{
		Title: "Section 6.4: system failure model and ARC constraint recommendation",
		Header: []string{"system", "nodes", "altitude ft", "MTBF days", "single-bit %",
			"recommended", "config"},
		Caption: "Paper: Cielo fails every 1.9 days (70.79% single-bit; bursts common) -> ARC_COR_BURST / Reed-Solomon;\n" +
			"Hopper every 5.43 days (94.6% single-bit) -> SEC-DED-class protection suffices.",
	}
	for _, rec := range r.Recs {
		s := rec.System
		t.AddRow(s.Name, iS(s.Nodes), iS(s.AltitudeFeet), f2(s.MTBFDays()),
			f1(100*s.SingleBitFraction), rec.Resiliency.Caps.String(), rec.Config.String())
	}
	return t
}

func newRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
