// Package experiments implements the paper's evaluation: one function
// per table or figure, each regenerating the corresponding rows or
// series on this machine. The cmd/ binaries and the repository-level
// benchmarks are thin wrappers around this package (the DESIGN.md
// per-experiment index maps figures to these functions).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple text table for experiment output.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table. The render is staged through an in-memory
// builder so w sees a single write whose error is reported — a table
// truncated by a full disk or closed pipe must not pass silently.
func (t *Table) Write(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(&sb, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintln(&sb, t.Caption)
	}
	fmt.Fprintln(&sb)
	_, err := io.WriteString(w, sb.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func eg(v float64) string  { return fmt.Sprintf("%.3g", v) }
func iS(v int) string      { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// WriteCSV renders the table as RFC-4180-ish CSV (header row first),
// for piping experiment output into plotting tools. Like Write, it
// reports the destination's write error.
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeCSVRow(&sb, t.Header)
	for _, r := range t.Rows {
		writeCSVRow(&sb, r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteString(",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			fmt.Fprintf(sb, "%q", c)
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteString("\n")
}
