// Package parallel provides a chunked parallel-for over index ranges
// with an explicit worker count. It is the repository's stand-in for
// the OpenMP thread-level parallelism ARC uses: a worker count of w
// corresponds to running with w OpenMP threads.
//
// The split is deterministic — workers own contiguous, near-equal
// ranges — so encoded output layout never depends on the worker count.
package parallel

import (
	"runtime"
	"sync"
)

// AnyWorkers requests as many workers as the runtime will schedule
// (the paper's ARC_ANY_THREADS).
const AnyWorkers = 0

// Clamp normalizes a requested worker count: AnyWorkers (or anything
// non-positive) becomes runtime.GOMAXPROCS(0), and counts above n are
// reduced to n so no worker owns an empty range.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For splits [0, n) into `workers` contiguous ranges and invokes body
// on each range concurrently. body(lo, hi) must be safe to run in
// parallel with other ranges. For blocks until all ranges complete.
//
// A worker count of 1 (or n <= 1) runs inline with no goroutines, so
// serial paths pay no synchronization cost.
func For(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		size := chunk
		if w < rem {
			size++
		}
		hi := lo + size
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForErr is For with error collection: the first non-nil error (by
// range order) is returned after all workers finish. Workers do not
// cancel each other; ranges are independent by contract.
func ForErr(n, workers int, body func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		return body(0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		size := chunk
		if w < rem {
			size++
		}
		hi := lo + size
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = body(lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
