package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// drainDeadline is how long a leak check waits for spawned goroutines
// to exit before declaring a leak. Workers returned from For/ForErr
// before Wait unblocked, but the runtime may take a few scheduler
// ticks to actually retire them.
const drainDeadline = 2 * time.Second

// goroutinesSettleTo polls until the live goroutine count drops back
// to at most base, reporting whether it did within the deadline.
func goroutinesSettleTo(base int) bool {
	deadline := time.Now().Add(drainDeadline)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return true
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	return false
}

func TestForLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	var total atomic.Int64
	for iter := 0; iter < 50; iter++ {
		for _, workers := range []int{2, 4, 8, AnyWorkers} {
			For(1000, workers, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}
	}
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live after drain, started with %d",
			runtime.NumGoroutine(), base)
	}
	if total.Load() != 50*4*1000 {
		t.Fatalf("ranges did not cover [0,1000) every run: %d", total.Load())
	}
}

func TestForErrLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	sentinel := errors.New("sentinel")
	for iter := 0; iter < 50; iter++ {
		// Error and non-error paths must both join every worker.
		if err := ForErr(1000, 8, func(lo, hi int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		err := ForErr(1000, 8, func(lo, hi int) error {
			if lo == 0 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
	}
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live after drain, started with %d",
			runtime.NumGoroutine(), base)
	}
}

// TestForErrPanicStillJoins documents that a panicking body is not
// recovered (it crashes the process like a serial loop would); this
// test instead pins the contract that a worker returning normally can
// never be abandoned by an early return in the caller: ForErr only
// returns after Wait, so the goroutine count is back to base the
// moment it does.
func TestForJoinIsSynchronous(t *testing.T) {
	base := runtime.NumGoroutine()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		For(8, 8, func(lo, hi int) { <-release })
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("For returned before its workers finished")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-done
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked after join: %d live, started with %d",
			runtime.NumGoroutine(), base)
	}
}
