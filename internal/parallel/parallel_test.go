package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, AnyWorkers} {
		n := 1000
		counts := make([]int32, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body must not run for n <= 0")
	}
}

func TestForMoreWorkersThanWork(t *testing.T) {
	var visits int32
	For(3, 100, func(lo, hi int) {
		atomic.AddInt32(&visits, int32(hi-lo))
	})
	if visits != 3 {
		t.Fatalf("visited %d indices, want 3", visits)
	}
}

func TestForRangesAreContiguous(t *testing.T) {
	// Property: for any n and workers, the ranges partition [0,n).
	prop := func(n8, w8 uint8) bool {
		n := int(n8)
		w := int(w8)
		if n == 0 {
			return true
		}
		seen := make([]int32, n)
		For(n, w, func(lo, hi int) {
			if lo > hi || lo < 0 || hi > n {
				t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(0, 100) < 1 {
		t.Fatal("AnyWorkers must clamp to at least 1")
	}
	if got := Clamp(50, 10); got != 10 {
		t.Fatalf("Clamp(50, 10) = %d, want 10", got)
	}
	if got := Clamp(-3, 10); got < 1 {
		t.Fatalf("negative workers must clamp positive, got %d", got)
	}
	if got := Clamp(4, 10); got != 4 {
		t.Fatalf("Clamp(4, 10) = %d, want 4", got)
	}
}

func TestForErrReturnsFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForErr(100, 4, func(lo, hi int) error {
		if lo == 0 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	if err := ForErr(10, 2, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForErr(0, 2, func(lo, hi int) error { return errors.New("x") }); err != nil {
		t.Fatal("n=0 must not invoke body")
	}
}

func TestForErrSerialPath(t *testing.T) {
	sentinel := errors.New("serial")
	if err := ForErr(5, 1, func(lo, hi int) error {
		if lo != 0 || hi != 5 {
			t.Fatalf("serial path got range [%d,%d)", lo, hi)
		}
		return sentinel
	}); err != sentinel {
		t.Fatal("serial error not propagated")
	}
}
