package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrPipeAborted reports that a Pipe was aborted: the item was not (or
// will not be) processed.
var ErrPipeAborted = errors.New("parallel: pipeline aborted")

// Pipe is a bounded, order-preserving parallel pipeline: Submit
// accepts items one at a time, a fixed pool of workers applies fn to
// them concurrently, and Next yields results strictly in submission
// order. At most `window` items are in flight, so memory stays bounded
// and a slow consumer backpressures the producer.
//
// Contract: exactly one goroutine calls Submit and Close (the
// producer), and exactly one goroutine calls Next (the consumer); they
// may be the same or different goroutines. Abort and Wait may be
// called from anywhere. The shutdown sequence that never leaks is:
// producer calls Close after its last Submit; consumer drains Next
// until ok == false; anyone calls Wait. Abort unblocks a producer
// stuck in Submit and makes workers skip remaining items, but the
// drain-then-Wait sequence is still required.
type Pipe[I, O any] struct {
	fn func(I) (O, error)

	// jobs feeds the workers; pending holds the same jobs in
	// submission order for the consumer. Both have capacity `window`,
	// and every job enters pending first, so neither send can block
	// once the pending send has gone through.
	jobs    chan *pipeJob[I, O]
	pending chan *pipeJob[I, O]
	quit    chan struct{}

	aborted   atomic.Bool
	workers   sync.WaitGroup
	closeOnce sync.Once
	abortOnce sync.Once
}

type pipeJob[I, O any] struct {
	in   I
	out  O
	err  error
	done chan struct{}
}

// NewPipe starts a pipeline with the given worker count (<= 0 means
// GOMAXPROCS) and in-flight window (raised to the worker count when
// smaller, so no worker is permanently idle).
func NewPipe[I, O any](workers, window int, fn func(I) (O, error)) *Pipe[I, O] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if window < workers {
		window = workers
	}
	p := &Pipe[I, O]{
		fn:      fn,
		jobs:    make(chan *pipeJob[I, O], window),
		pending: make(chan *pipeJob[I, O], window),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.workers.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pipe[I, O]) worker() {
	defer p.workers.Done()
	for j := range p.jobs {
		if p.aborted.Load() {
			j.err = ErrPipeAborted
		} else {
			j.out, j.err = p.fn(j.in)
		}
		close(j.done)
	}
}

// Submit enqueues one item, blocking while the in-flight window is
// full. It returns ErrPipeAborted (without enqueueing) once the pipe
// has been aborted.
func (p *Pipe[I, O]) Submit(in I) error {
	j := &pipeJob[I, O]{in: in, done: make(chan struct{})}
	select {
	case p.pending <- j:
	case <-p.quit:
		return ErrPipeAborted
	}
	select {
	case p.jobs <- j:
	case <-p.quit:
		// The job is already visible to the consumer, so it must be
		// completed here: no worker is obliged to pick it up anymore.
		j.err = ErrPipeAborted
		close(j.done)
	}
	return nil
}

// Close declares the end of input. The consumer can keep calling Next
// until it has drained every submitted item. Close is idempotent; it
// must not race with Submit (producer-only, like Submit itself).
func (p *Pipe[I, O]) Close() {
	p.closeOnce.Do(func() {
		close(p.pending)
		close(p.jobs)
	})
}

// Next returns the next result in submission order, blocking until it
// is ready. ok == false means the pipe was closed and fully drained.
// A per-item error (including ErrPipeAborted for items cancelled by
// Abort) is returned alongside the item's output.
func (p *Pipe[I, O]) Next() (out O, ok bool, err error) {
	j, ok := <-p.pending
	if !ok {
		var zero O
		return zero, false, nil
	}
	<-j.done
	return j.out, true, j.err
}

// Abort cancels the pipeline: a blocked or future Submit fails with
// ErrPipeAborted and workers skip items they have not started. Items
// already being processed run to completion (fn is never interrupted
// mid-call). Abort is idempotent and safe from any goroutine.
func (p *Pipe[I, O]) Abort() {
	p.abortOnce.Do(func() {
		p.aborted.Store(true)
		close(p.quit)
	})
}

// Wait joins the worker goroutines. It returns once Close has been
// called and every worker has exited; call it after the drain.
func (p *Pipe[I, O]) Wait() {
	p.workers.Wait()
}
