package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrPipeAborted reports that a Pipe was aborted: the item was not (or
// will not be) processed.
var ErrPipeAborted = errors.New("parallel: pipeline aborted")

// Pipe is a bounded, order-preserving parallel pipeline: Submit
// accepts items one at a time, a fixed pool of workers applies fn to
// them concurrently, and Next yields results strictly in submission
// order. At most `window` items are in flight, so memory stays bounded
// and a slow consumer backpressures the producer.
//
// Contract: exactly one goroutine calls Submit and Close (the
// producer), and exactly one goroutine calls Next (the consumer); they
// may be the same or different goroutines. Abort and Wait may be
// called from anywhere. The shutdown sequence that never leaks is:
// producer calls Close after its last Submit; consumer drains Next
// until ok == false; anyone calls Wait. Abort unblocks a producer
// stuck in Submit and makes workers skip remaining items, but the
// drain-then-Wait sequence is still required.
//
// Steady-state Submit/Next round trips are allocation-free: job cells
// (including their completion channels) are recycled through an
// internal sync.Pool once the consumer has observed them.
type Pipe[I, O any] struct {
	// jobs feeds the workers; pending holds the same jobs in
	// submission order for the consumer. Both have capacity `window`,
	// and every job enters pending first, so neither send can block
	// once the pending send has gone through.
	jobs    chan *pipeJob[I, O]
	pending chan *pipeJob[I, O]
	quit    chan struct{}

	// free recycles consumed pipeJob cells. A job is only Put after
	// Next (or the abort-drain loop) has read its result, at which
	// point no worker or producer references it.
	free sync.Pool

	aborted   atomic.Bool
	workers   sync.WaitGroup
	closeOnce sync.Once
	abortOnce sync.Once
}

// pipeJob carries one item through the pipe. done is a one-slot
// buffered channel used as a reusable completion signal: exactly one
// send (by the completing side) and one receive (by the consumer) per
// trip through the pipe, so the cell can be pooled afterwards.
type pipeJob[I, O any] struct {
	in   I
	out  O
	err  error
	done chan struct{}
}

// NewPipe starts a pipeline with the given worker count (<= 0 means
// GOMAXPROCS) and in-flight window (raised to the worker count when
// smaller, so no worker is permanently idle).
func NewPipe[I, O any](workers, window int, fn func(I) (O, error)) *Pipe[I, O] {
	return NewPipeWith(workers, window,
		func() struct{} { return struct{}{} },
		func(in I, _ struct{}) (O, error) { return fn(in) })
}

// NewPipeWith is NewPipe with per-worker state: each worker goroutine
// calls newState exactly once on startup and passes its private state
// value to every fn invocation it runs. Because a state value is only
// ever touched by the goroutine that created it, fn can use it as a
// scratch arena (reusable buffers, cached lookups) without locks and
// without per-job allocation. newState runs on the worker goroutine
// itself, so lazily-initialized state lands in that worker's cache.
func NewPipeWith[I, O, S any](workers, window int, newState func() S, fn func(I, S) (O, error)) *Pipe[I, O] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if window < workers {
		window = workers
	}
	p := &Pipe[I, O]{
		jobs:    make(chan *pipeJob[I, O], window),
		pending: make(chan *pipeJob[I, O], window),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			state := newState()
			for j := range p.jobs {
				if p.aborted.Load() {
					j.err = ErrPipeAborted
				} else {
					j.out, j.err = fn(j.in, state)
				}
				j.done <- struct{}{}
			}
		}()
	}
	return p
}

// getJob returns a recycled (or new) job cell with in set.
func (p *Pipe[I, O]) getJob(in I) *pipeJob[I, O] {
	if j, ok := p.free.Get().(*pipeJob[I, O]); ok {
		j.in = in
		return j
	}
	return &pipeJob[I, O]{in: in, done: make(chan struct{}, 1)}
}

// putJob recycles a fully-consumed job cell, dropping its payload
// references so pooled cells do not retain caller memory.
func (p *Pipe[I, O]) putJob(j *pipeJob[I, O]) {
	var zi I
	var zo O
	j.in, j.out, j.err = zi, zo, nil
	p.free.Put(j)
}

// Submit enqueues one item, blocking while the in-flight window is
// full. It returns ErrPipeAborted (without enqueueing) once the pipe
// has been aborted.
func (p *Pipe[I, O]) Submit(in I) error {
	j := p.getJob(in)
	select {
	case p.pending <- j:
	case <-p.quit:
		p.putJob(j)
		return ErrPipeAborted
	}
	select {
	case p.jobs <- j:
	case <-p.quit:
		// The job is already visible to the consumer, so it must be
		// completed here: no worker is obliged to pick it up anymore.
		j.err = ErrPipeAborted
		j.done <- struct{}{}
	}
	return nil
}

// Close declares the end of input. The consumer can keep calling Next
// until it has drained every submitted item. Close is idempotent; it
// must not race with Submit (producer-only, like Submit itself).
func (p *Pipe[I, O]) Close() {
	p.closeOnce.Do(func() {
		close(p.pending)
		close(p.jobs)
	})
}

// Next returns the next result in submission order, blocking until it
// is ready. ok == false means the pipe was closed and fully drained.
// A per-item error (including ErrPipeAborted for items cancelled by
// Abort) is returned alongside the item's output.
func (p *Pipe[I, O]) Next() (out O, ok bool, err error) {
	j, ok := <-p.pending
	if !ok {
		var zero O
		return zero, false, nil
	}
	<-j.done
	out, err = j.out, j.err
	p.putJob(j)
	return out, true, err
}

// Abort cancels the pipeline: a blocked or future Submit fails with
// ErrPipeAborted and workers skip items they have not started. Items
// already being processed run to completion (fn is never interrupted
// mid-call). Abort is idempotent and safe from any goroutine.
func (p *Pipe[I, O]) Abort() {
	p.abortOnce.Do(func() {
		p.aborted.Store(true)
		close(p.quit)
	})
}

// Wait joins the worker goroutines. It returns once Close has been
// called and every worker has exited; call it after the drain.
func (p *Pipe[I, O]) Wait() {
	p.workers.Wait()
}
