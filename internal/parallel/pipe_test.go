package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/raceflag"
)

func TestPipePreservesOrder(t *testing.T) {
	base := runtime.NumGoroutine()
	// Workers that finish out of order (later items are faster) must
	// still deliver in submission order.
	p := NewPipe(4, 4, func(i int) (int, error) {
		time.Sleep(time.Duration(50-i) * time.Microsecond)
		return i * i, nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := p.Submit(i); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
		p.Close()
	}()
	for i := 0; i < 50; i++ {
		out, ok, err := p.Next()
		if !ok || err != nil {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
		}
		if out != i*i {
			t.Fatalf("out of order: got %d at position %d, want %d", out, i, i*i)
		}
	}
	if _, ok, _ := p.Next(); ok {
		t.Fatal("Next after drain must report done")
	}
	<-done
	p.Wait()
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), base)
	}
}

func TestPipeCarriesPerItemErrors(t *testing.T) {
	sentinel := errors.New("sentinel")
	p := NewPipe(2, 2, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			if err := p.Submit(i); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
		p.Close()
	}()
	for i := 0; i < 6; i++ {
		out, ok, err := p.Next()
		if !ok {
			t.Fatal("pipe ended early")
		}
		if i == 3 {
			if !errors.Is(err, sentinel) {
				t.Fatalf("item 3: err = %v, want sentinel", err)
			}
			continue
		}
		if err != nil || out != i {
			t.Fatalf("item %d: out=%d err=%v", i, out, err)
		}
	}
	<-done
	p.Wait()
}

func TestPipeAbortUnblocksSubmit(t *testing.T) {
	base := runtime.NumGoroutine()
	block := make(chan struct{})
	p := NewPipe(1, 1, func(i int) (int, error) {
		<-block
		return i, nil
	})
	submitted := make(chan error, 1)
	go func() {
		var err error
		// The window is 1, so one of these must block until Abort.
		for i := 0; i < 8 && err == nil; i++ {
			err = p.Submit(i)
		}
		submitted <- err
		p.Close()
	}()
	time.Sleep(20 * time.Millisecond) // let the producer hit the full window
	p.Abort()
	close(block)
	if err := <-submitted; !errors.Is(err, ErrPipeAborted) {
		t.Fatalf("blocked Submit after Abort = %v, want ErrPipeAborted", err)
	}
	// Drain: every submitted job must still complete (possibly with
	// ErrPipeAborted), and the pipe must then be clean.
	for {
		_, ok, _ := p.Next()
		if !ok {
			break
		}
	}
	p.Wait()
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), base)
	}
}

func TestPipeAbortCancelsUnstartedWork(t *testing.T) {
	var ran atomic.Int64
	p := NewPipe(1, 8, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			// Give the producer time to fill the window behind us.
			time.Sleep(50 * time.Millisecond)
		}
		return i, nil
	})
	for i := 0; i < 8; i++ {
		if err := p.Submit(i); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	p.Abort()
	p.Close()
	aborted := 0
	for {
		_, ok, err := p.Next()
		if !ok {
			break
		}
		if errors.Is(err, ErrPipeAborted) {
			aborted++
		}
	}
	p.Wait()
	if aborted == 0 {
		t.Fatal("abort cancelled no queued work")
	}
	if got := ran.Load(); got+int64(aborted) != 8 {
		t.Fatalf("ran %d + aborted %d != 8 submitted", got, aborted)
	}
}

func TestPipeSingleWorkerDefaultsAndZeroItems(t *testing.T) {
	p := NewPipe(0, 0, func(s string) (string, error) { return s, nil })
	p.Close()
	if _, ok, _ := p.Next(); ok {
		t.Fatal("empty closed pipe must be done")
	}
	p.Wait()
}

// workerScratch is deliberately non-atomic: if two Pipe workers ever
// shared one state value, the race detector would flag the unsynchronized
// hits increments and the hits totals would be corrupted.
type workerScratch struct {
	id   int64
	hits int
	buf  []byte
}

func TestPipeWithPerWorkerState(t *testing.T) {
	const workers, items = 4, 400
	var created atomic.Int64
	var mu chan struct{} // buffered-1 channel used as a mutex for the registry
	mu = make(chan struct{}, 1)
	registry := make(map[*workerScratch]bool)

	p := NewPipeWith(workers, workers,
		func() *workerScratch {
			s := &workerScratch{id: created.Add(1), buf: make([]byte, 64)}
			mu <- struct{}{}
			registry[s] = true
			<-mu
			return s
		},
		func(i int, s *workerScratch) (int64, error) {
			s.hits++ // unsynchronized on purpose: state must be worker-private
			for k := range s.buf {
				s.buf[k] = byte(i)
			}
			return s.id, nil
		})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < items; i++ {
			if err := p.Submit(i); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
		p.Close()
	}()
	seen := make(map[int64]bool)
	for {
		id, ok, err := p.Next()
		if !ok {
			break
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		seen[id] = true
	}
	<-done
	p.Wait()

	if got := created.Load(); got != workers {
		t.Fatalf("newState called %d times, want exactly %d (once per worker)", got, workers)
	}
	if len(registry) != workers {
		t.Fatalf("%d distinct state values, want %d", len(registry), workers)
	}
	total := 0
	for s := range registry {
		total += s.hits
	}
	if total != items {
		t.Fatalf("per-worker hit counts sum to %d, want %d (lost or doubled updates imply shared state)", total, items)
	}
	if len(seen) == 0 || len(seen) > workers {
		t.Fatalf("results reported %d worker ids, want between 1 and %d", len(seen), workers)
	}
}

// TestPipeSteadyStateAllocFree pins the pooled-job design: after
// warm-up, a Submit/Next round trip through the pipe performs no
// allocations on the producer/consumer goroutine. (Worker-side costs
// are fn's business; here fn does nothing.)
func TestPipeSteadyStateAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	p := NewPipe(1, 1, func(i int) (int, error) { return i, nil })
	defer func() {
		p.Close()
		for {
			if _, ok, _ := p.Next(); !ok {
				break
			}
		}
		p.Wait()
	}()
	for i := 0; i < 64; i++ { // warm the job pool
		if err := p.Submit(i); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := p.Next(); !ok || err != nil {
			t.Fatalf("warmup next: ok=%v err=%v", ok, err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := p.Submit(7); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := p.Next(); !ok || err != nil {
			t.Fatalf("next: ok=%v err=%v", ok, err)
		}
	})
	if avg > 0.1 {
		t.Fatalf("steady-state Submit/Next allocates %.2f allocs/op, want ~0", avg)
	}
}

func TestPipeStressLeakFree(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		p := NewPipe(4, 8, func(i int) (string, error) {
			return fmt.Sprint(i), nil
		})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 100; i++ {
				if p.Submit(i) != nil {
					break
				}
			}
			p.Close()
		}()
		n := 0
		for {
			_, ok, _ := p.Next()
			if !ok {
				break
			}
			n++
			if n == 30 && iter%2 == 1 {
				p.Abort() // abandon mid-stream every other iteration
			}
		}
		<-done
		p.Wait()
	}
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), base)
	}
}
