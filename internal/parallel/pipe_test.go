package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestPipePreservesOrder(t *testing.T) {
	base := runtime.NumGoroutine()
	// Workers that finish out of order (later items are faster) must
	// still deliver in submission order.
	p := NewPipe(4, 4, func(i int) (int, error) {
		time.Sleep(time.Duration(50-i) * time.Microsecond)
		return i * i, nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := p.Submit(i); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
		p.Close()
	}()
	for i := 0; i < 50; i++ {
		out, ok, err := p.Next()
		if !ok || err != nil {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
		}
		if out != i*i {
			t.Fatalf("out of order: got %d at position %d, want %d", out, i, i*i)
		}
	}
	if _, ok, _ := p.Next(); ok {
		t.Fatal("Next after drain must report done")
	}
	<-done
	p.Wait()
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), base)
	}
}

func TestPipeCarriesPerItemErrors(t *testing.T) {
	sentinel := errors.New("sentinel")
	p := NewPipe(2, 2, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			if err := p.Submit(i); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
		p.Close()
	}()
	for i := 0; i < 6; i++ {
		out, ok, err := p.Next()
		if !ok {
			t.Fatal("pipe ended early")
		}
		if i == 3 {
			if !errors.Is(err, sentinel) {
				t.Fatalf("item 3: err = %v, want sentinel", err)
			}
			continue
		}
		if err != nil || out != i {
			t.Fatalf("item %d: out=%d err=%v", i, out, err)
		}
	}
	<-done
	p.Wait()
}

func TestPipeAbortUnblocksSubmit(t *testing.T) {
	base := runtime.NumGoroutine()
	block := make(chan struct{})
	p := NewPipe(1, 1, func(i int) (int, error) {
		<-block
		return i, nil
	})
	submitted := make(chan error, 1)
	go func() {
		var err error
		// The window is 1, so one of these must block until Abort.
		for i := 0; i < 8 && err == nil; i++ {
			err = p.Submit(i)
		}
		submitted <- err
		p.Close()
	}()
	time.Sleep(20 * time.Millisecond) // let the producer hit the full window
	p.Abort()
	close(block)
	if err := <-submitted; !errors.Is(err, ErrPipeAborted) {
		t.Fatalf("blocked Submit after Abort = %v, want ErrPipeAborted", err)
	}
	// Drain: every submitted job must still complete (possibly with
	// ErrPipeAborted), and the pipe must then be clean.
	for {
		_, ok, _ := p.Next()
		if !ok {
			break
		}
	}
	p.Wait()
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), base)
	}
}

func TestPipeAbortCancelsUnstartedWork(t *testing.T) {
	var ran atomic.Int64
	p := NewPipe(1, 8, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			// Give the producer time to fill the window behind us.
			time.Sleep(50 * time.Millisecond)
		}
		return i, nil
	})
	for i := 0; i < 8; i++ {
		if err := p.Submit(i); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	p.Abort()
	p.Close()
	aborted := 0
	for {
		_, ok, err := p.Next()
		if !ok {
			break
		}
		if errors.Is(err, ErrPipeAborted) {
			aborted++
		}
	}
	p.Wait()
	if aborted == 0 {
		t.Fatal("abort cancelled no queued work")
	}
	if got := ran.Load(); got+int64(aborted) != 8 {
		t.Fatalf("ran %d + aborted %d != 8 submitted", got, aborted)
	}
}

func TestPipeSingleWorkerDefaultsAndZeroItems(t *testing.T) {
	p := NewPipe(0, 0, func(s string) (string, error) { return s, nil })
	p.Close()
	if _, ok, _ := p.Next(); ok {
		t.Fatal("empty closed pipe must be done")
	}
	p.Wait()
}

func TestPipeStressLeakFree(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		p := NewPipe(4, 8, func(i int) (string, error) {
			return fmt.Sprint(i), nil
		})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 100; i++ {
				if p.Submit(i) != nil {
					break
				}
			}
			p.Close()
		}()
		n := 0
		for {
			_, ok, _ := p.Next()
			if !ok {
				break
			}
			n++
			if n == 30 && iter%2 == 1 {
				p.Abort() // abandon mid-stream every other iteration
			}
		}
		<-done
		p.Wait()
	}
	if !goroutinesSettleTo(base) {
		t.Fatalf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), base)
	}
}
