package arc

// Native fuzz targets for every decoder that consumes untrusted bytes.
// `go test` runs the seed corpus as regression tests; `go test -fuzz
// FuzzX` explores further. The invariant under test is uniform: a
// decoder may reject input with an error but must never panic, hang,
// or allocate unboundedly.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
	"math"
	"runtime"
	"testing"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/huffman"
	"repro/internal/sz"
	"repro/internal/zfp"
)

func FuzzContainerDecode(f *testing.F) {
	// Seed with a valid container and a few mutations.
	eng, err := InitWithOptions(1, Options{CacheDir: "-", TrainSampleBytes: 16 << 10})
	if err != nil {
		f.Fatal(err)
	}
	defer eng.Close()
	enc, err := eng.Encode(bytes.Repeat([]byte{0xA5}, 4096), AnyMem, AnyBW, AnyECC)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc.Encoded)
	f.Add([]byte{})
	f.Add([]byte("ARC1 but not really a container........"))
	mut := append([]byte(nil), enc.Encoded...)
	mut[3] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		_, _ = Decode(data, 1)
	})
}

func FuzzSZDecompress(f *testing.F) {
	field := make([]float64, 256)
	for i := range field {
		field[i] = float64(i % 17)
	}
	valid, err := sz.Compress(field, []int{16, 16}, sz.Options{Mode: sz.ModeABS, ErrorBound: 0.1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SZG1 followed by garbage............."))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x10
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		_, _, _ = sz.Decompress(data)
		_, _, _ = sz.DecompressRegions(data, 1)
	})
}

func FuzzZFPDecompress(f *testing.F) {
	field := make([]float64, 256)
	for i := range field {
		field[i] = float64(i) * 0.25
	}
	for _, opts := range []zfp.Options{
		{Mode: zfp.ModeAccuracy, Param: 0.01},
		{Mode: zfp.ModeRate, Param: 8},
	} {
		valid, err := zfp.Compress(field, []int{16, 16}, opts)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(valid)
		mut := append([]byte(nil), valid...)
		mut[len(mut)-1] ^= 0x01
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		_, _, _ = zfp.Decompress(data)
		_, _, _ = zfp.DecompressProgressive(data, 8, 1)
	})
}

func FuzzHuffmanTable(f *testing.F) {
	codec, err := huffman.Build([]int64{10, 5, 3, 2, 1})
	if err != nil {
		f.Fatal(err)
	}
	var w bitio.Writer
	codec.WriteTable(&w)
	for i := 0; i < 64; i++ {
		codec.Encode(&w, i%5)
	}
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			return
		}
		r := bitio.NewReader(data)
		c, err := huffman.ReadTable(r)
		if err != nil {
			return
		}
		// Decode everything the stream claims to hold; errors fine.
		for i := 0; i < 1<<16; i++ {
			if _, err := c.Decode(r); err != nil {
				return
			}
		}
	})
}

func FuzzStreamReader(f *testing.F) {
	eng, err := InitWithOptions(1, Options{CacheDir: "-", TrainSampleBytes: 16 << 10})
	if err != nil {
		f.Fatal(err)
	}
	defer eng.Close()
	var buf bytes.Buffer
	w, err := eng.NewWriter(&buf, AnyMem, AnyBW, AnyECC, 2048)
	if err != nil {
		f.Fatal(err)
	}
	_, _ = w.Write(bytes.Repeat([]byte{7}, 6000))
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		r := NewReader(bytes.NewReader(data), 1)
		tmp := make([]byte, 4096)
		for i := 0; i < 1<<12; i++ {
			if _, err := r.Read(tmp); err != nil {
				return
			}
		}
	})
}

// FuzzStreamReaderPipelined drives the concurrent read-ahead path over
// arbitrary bytes: same no-panic/no-hang invariant as FuzzStreamReader,
// plus the pipeline must always shut down cleanly — both when a stream
// is read to its terminal error and when it is abandoned via Close
// after the first chunk.
func FuzzStreamReaderPipelined(f *testing.F) {
	eng, err := InitWithOptions(1, Options{CacheDir: "-", TrainSampleBytes: 16 << 10})
	if err != nil {
		f.Fatal(err)
	}
	defer eng.Close()
	var buf bytes.Buffer
	w, err := eng.NewWriterWith(&buf, AnyMem, AnyBW, AnyECC, StreamOptions{ChunkSize: 1024, Pipeline: 4})
	if err != nil {
		f.Fatal(err)
	}
	_, _ = w.Write(bytes.Repeat([]byte{3}, 6000))
	_ = w.Close()
	f.Add(buf.Bytes(), true)
	f.Add(buf.Bytes(), false)
	f.Add([]byte{}, true)
	mut := append([]byte(nil), buf.Bytes()...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut, true)
	f.Fuzz(func(t *testing.T, data []byte, drain bool) {
		if len(data) > 1<<20 {
			return
		}
		r := NewReaderWith(bytes.NewReader(data), 1, StreamOptions{Pipeline: 4})
		defer r.Close()
		tmp := make([]byte, 4096)
		for i := 0; i < 1<<12; i++ {
			if _, err := r.Read(tmp); err != nil {
				return
			}
			if !drain {
				return // exercise Close-without-drain
			}
		}
	})
}

// FuzzIndexDecode drives the v2 footer/trailer parser with arbitrary
// tails behind a pristine chunk stream. The index is an optimization,
// never an authority: whatever the tail claims, opening must not
// panic, allocations stay bounded, a reader that fell back to the
// scan path must deliver the full original bytes, and a reader that
// accepted an index must either return the original bytes or an error
// — never wrong data.
func FuzzIndexDecode(f *testing.F) {
	orig := make([]byte, 3*4096)
	for i := range orig {
		orig[i] = byte(i*7 + i>>9)
	}
	eng := &core.Engine{}
	choice := core.Choice{Config: core.Config{Method: SECDED, Param: 64}, Threads: 1}
	encode := func(indexed bool) []byte {
		var buf bytes.Buffer
		w, err := eng.NewChunkWriterChoice(&buf, choice,
			core.StreamOptions{ChunkSize: 4096, Pipeline: 1, Indexed: indexed})
		if err != nil {
			f.Fatal(err)
		}
		if _, err := w.Write(orig); err != nil {
			f.Fatal(err)
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	prefix := encode(false) // the bare v1 chunk stream
	v2 := encode(true)      // identical prefix + index footer + trailer
	footer := v2[len(prefix):]

	f.Add(footer) // the real footer: the index must load
	f.Add([]byte{})
	f.Add(make([]byte, len(footer))) // zeroed: no trailer magic
	f.Add(footer[:len(footer)-30])   // truncated mid-trailer
	f.Add(footer[len(footer)-72:])   // trailer pointing past the file
	flipped := append([]byte(nil), footer...)
	flipped[10] ^= 0x04 // one bit in the index payload: ECC territory
	f.Add(flipped)
	broken := append([]byte(nil), footer...)
	for i := len(broken) - 72; i < len(broken); i++ {
		broken[i] ^= 0xA5 // all three trailer replicas damaged
	}
	f.Add(broken)

	f.Fuzz(func(t *testing.T, tail []byte) {
		if len(tail) > 1<<16 {
			return
		}
		data := append(append([]byte(nil), prefix...), tail...)
		got := make([]byte, len(orig))
		var r *ReaderAt
		var n int
		var err error
		delta := decodeAllocDelta(func() {
			r, err = OpenReaderAt(bytes.NewReader(data), int64(len(data)), RangeOptions{Pipeline: 1})
			if err != nil {
				t.Fatalf("open must fall back to the scan, not fail: %v", err)
			}
			defer r.Close()
			n, _, err = r.ReadRange(got, 0, int64(len(orig)))
		})
		if delta > corruptAllocBudget(len(data)) {
			t.Fatalf("decode allocated %d bytes for a %d-byte input", delta, len(data))
		}
		if !r.Indexed() && err != nil {
			// The chunk prefix is pristine: the scan fallback has no
			// excuse not to serve it.
			t.Fatalf("scan-path read failed: %v", err)
		}
		if err == nil {
			if n != len(orig) || !bytes.Equal(got[:n], orig) {
				t.Fatalf("read returned wrong bytes (indexed=%v, n=%d)", r.Indexed(), n)
			}
		}
	})
}

// FuzzBitIORoundTrip drives the word-level bit writer/reader with an
// arbitrary (value, width) field sequence decoded from the fuzz input:
// each field takes 1 width byte (mod 65) and 8 value bytes. Every
// field written must read back bit-exactly (masked to its width), the
// write and read cursors must agree, and reading one bit past the end
// must fail — pinning the accumulator kernels against the per-bit
// semantics the stream formats were built on.
func FuzzBitIORoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0xFF, 64, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{57, 0xAA}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		var vals []uint64
		var widths []int
		var w bitio.Writer
		total := 0
		for i := 0; i+9 <= len(data); i += 9 {
			n := int(data[i]) % 65
			var v uint64
			for j := 1; j <= 8; j++ {
				v = v<<8 | uint64(data[i+j])
			}
			w.WriteBits(v, n)
			if n < 64 {
				v &= 1<<uint(n) - 1
			}
			vals = append(vals, v)
			widths = append(widths, n)
			total += n
			if w.Len() != total {
				t.Fatalf("Len %d after %d written bits", w.Len(), total)
			}
		}
		buf := w.Bytes()
		if len(buf) != (total+7)/8 {
			t.Fatalf("buffer %d bytes for %d bits", len(buf), total)
		}
		r := bitio.NewReader(buf)
		for i, n := range widths {
			got, err := r.ReadBits(n)
			if err != nil {
				t.Fatalf("field %d: %v", i, err)
			}
			if got != vals[i] {
				t.Fatalf("field %d (width %d): %#x != %#x", i, n, got, vals[i])
			}
		}
		if r.Pos() != total {
			t.Fatalf("read cursor %d != %d", r.Pos(), total)
		}
		// The flush padding is readable but nothing beyond it.
		if err := r.Skip(r.Remaining()); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReadBit(); err == nil {
			t.Fatal("read past end succeeded")
		}
	})
}

// corruptAllocBudget is the allocation ceiling for decoding one
// corrupted stream: a fixed multiple of the input size plus slack for
// fixed-size decode state (Huffman decode tables and LUT, flate
// window, block scratch). The decoder hardening work (see
// docs/DECODER_HARDENING.md) exists to keep every header-driven
// allocation under this kind of bound.
func corruptAllocBudget(inputLen int) uint64 {
	return 4096*uint64(inputLen) + (8 << 20)
}

// decodeAllocDelta measures the bytes allocated while fn runs.
// TotalAlloc is cumulative, so the delta is unaffected by garbage
// collection in between.
func decodeAllocDelta(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// FuzzSZDecodeCorruptHeader flips bytes in the header regions of a
// fixed valid SZ stream — both the outer lossless wrapper (magic +
// payload length) and the inner header holding dims, counts, and
// section lengths — and requires every mutation to decode to an error
// or a clean result, never a panic, with allocations bounded by a
// fixed multiple of the input size.
func FuzzSZDecodeCorruptHeader(f *testing.F) {
	field := make([]float64, 256)
	for i := range field {
		field[i] = math.Sin(float64(i) / 7)
	}
	valid, err := sz.Compress(field, []int{16, 16}, sz.Options{Mode: sz.ModeABS, ErrorBound: 0.01})
	if err != nil {
		f.Fatal(err)
	}
	// The inner payload is what the outer DEFLATE pass wraps; keeping
	// it around lets the fuzz body corrupt the inner header directly
	// instead of hoping a compressed-byte flip lands there.
	inner := bytes.NewBuffer(nil)
	fr := flate.NewReader(bytes.NewReader(valid[12:]))
	if _, err := io.Copy(inner, fr); err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(4), byte(0xFF))  // outer payload length, low byte
	f.Add(uint16(11), byte(0x7F)) // outer payload length, high byte
	f.Add(uint16(0), byte(0x01))  // outer magic
	f.Add(uint16(7), byte(0x20))  // inner ndims/dims region
	f.Add(uint16(45), byte(0xFF)) // inner unpredictable/huffman counts
	f.Fuzz(func(t *testing.T, pos uint16, mask byte) {
		// Outer-header mutation.
		data := append([]byte(nil), valid...)
		span := len(data)
		if span > 64 {
			span = 64
		}
		data[int(pos)%span] ^= mask
		if delta := decodeAllocDelta(func() {
			_, _, _ = sz.Decompress(data)
			_, _, _ = sz.DecompressRegions(data, 1)
		}); delta > corruptAllocBudget(len(data)) {
			t.Fatalf("outer-corrupted decode allocated %d bytes for a %d-byte input", delta, len(data))
		}

		// Inner-header mutation: corrupt the pre-DEFLATE bytes, then
		// rebuild a well-formed lossless wrapper around them so the
		// parser sees the corrupted metadata itself.
		innerMut := append([]byte(nil), inner.Bytes()...)
		span = len(innerMut)
		if span > 64 {
			span = 64
		}
		innerMut[int(pos)%span] ^= mask
		var rewrapped bytes.Buffer
		rewrapped.WriteString("SZG1")
		var lenField [8]byte
		binary.LittleEndian.PutUint64(lenField[:], uint64(len(innerMut)))
		rewrapped.Write(lenField[:])
		fw, err := flate.NewWriter(&rewrapped, flate.BestSpeed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(innerMut); err != nil {
			t.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		data = rewrapped.Bytes()
		if delta := decodeAllocDelta(func() {
			_, _, _ = sz.Decompress(data)
		}); delta > corruptAllocBudget(len(data)) {
			t.Fatalf("inner-corrupted decode allocated %d bytes for a %d-byte input", delta, len(data))
		}
	})
}

// FuzzZFPDecodeCorruptHeader is the ZFP counterpart: the header
// (magic, version, mode, dims, param) is stored uncompressed, so a
// direct byte flip reaches every field. Both the plain and the
// progressive decode paths must fail with a bounded error.
func FuzzZFPDecodeCorruptHeader(f *testing.F) {
	field := make([]float64, 256)
	for i := range field {
		field[i] = float64(i) * 0.5
	}
	var streams [][]byte
	for _, opts := range []zfp.Options{
		{Mode: zfp.ModeAccuracy, Param: 0.01},
		{Mode: zfp.ModeRate, Param: 8},
	} {
		valid, err := zfp.Compress(field, []int{16, 16}, opts)
		if err != nil {
			f.Fatal(err)
		}
		streams = append(streams, valid)
	}
	f.Add(uint16(5), byte(0xFF))  // mode byte
	f.Add(uint16(6), byte(0x03))  // ndims
	f.Add(uint16(7), byte(0x80))  // dim 0, low byte
	f.Add(uint16(10), byte(0x10)) // dim 0, high byte
	f.Add(uint16(15), byte(0x7F)) // param bits
	f.Fuzz(func(t *testing.T, pos uint16, mask byte) {
		for _, valid := range streams {
			data := append([]byte(nil), valid...)
			span := len(data)
			if span > 23 { // magic(4)+ver+mode+ndims+2*dim(4)+param(8)
				span = 23
			}
			data[int(pos)%span] ^= mask
			if delta := decodeAllocDelta(func() {
				_, _, _ = zfp.Decompress(data)
				_, _, _ = zfp.DecompressProgressive(data, 4, 1)
			}); delta > corruptAllocBudget(len(data)) {
				t.Fatalf("corrupted decode allocated %d bytes for a %d-byte input", delta, len(data))
			}
		}
	})
}
