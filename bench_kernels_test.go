package arc

// Per-kernel microbenchmarks for the word-level ECC and bit-I/O hot
// paths, each paired with its retained scalar reference so the speedup
// is measured in the same run on the same host. verify.sh records the
// results (plus host metadata) to BENCH_kernels.json and gates on the
// word/scalar ratios: >=3x for SECDED-64 encode, >=2x for GF(256)
// MulSlice. See docs/KERNELS.md for how the kernels work and why their
// output is bit-identical to the references.

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/ecc/hamming"
	"repro/internal/ecc/interleave"
	"repro/internal/ecc/reedsolomon"
	"repro/internal/gf256"
	"repro/internal/huffman"
)

// kernelBuf is the working-set size for the slice kernels: large
// enough to leave L1 but stay in L2, matching a stream chunk's scale.
const kernelBuf = 256 << 10

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func BenchmarkKernelGF256MulSlice(b *testing.B) {
	src := randBytes(kernelBuf, 1)
	dst := randBytes(kernelBuf, 2)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(kernelBuf)
		for i := 0; i < b.N; i++ {
			gf256.MulSlice(0x1D, src, dst)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(kernelBuf)
		for i := 0; i < b.N; i++ {
			gf256.MulSliceRef(0x1D, src, dst)
		}
	})
}

// BenchmarkKernelGF256MulSliceTier measures MulSlice under every SIMD
// dispatch tier the host supports (plus the word fallback), so one run
// records how much each vector width buys over the next. benchmeta
// gates the avx2/ssse3 ratio on hosts that report AVX2.
func BenchmarkKernelGF256MulSliceTier(b *testing.B) {
	src := randBytes(kernelBuf, 12)
	dst := randBytes(kernelBuf, 13)
	for _, tier := range gf256.Tiers() {
		b.Run(tier, func(b *testing.B) {
			restore, err := gf256.ForceTier(tier)
			if err != nil {
				b.Fatalf("ForceTier(%q): %v", tier, err)
			}
			defer restore()
			b.SetBytes(kernelBuf)
			for i := 0; i < b.N; i++ {
				gf256.MulSlice(0x1D, src, dst)
			}
		})
	}
}

func BenchmarkKernelGF256Xor(b *testing.B) {
	src := randBytes(kernelBuf, 3)
	dst := randBytes(kernelBuf, 4)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(kernelBuf)
		for i := 0; i < b.N; i++ {
			gf256.XorSlice(src, dst)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(kernelBuf)
		for i := 0; i < b.N; i++ {
			gf256.XorSliceRef(src, dst)
		}
	})
}

func BenchmarkKernelSECDED64Encode(b *testing.B) {
	code := hamming.NewExtended(64, 1, "secded64")
	data := randBytes(kernelBuf, 5)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(kernelBuf)
		for i := 0; i < b.N; i++ {
			code.Encode(data)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(kernelBuf)
		for i := 0; i < b.N; i++ {
			code.EncodeRef(data)
		}
	})
}

func BenchmarkKernelSECDED64Decode(b *testing.B) {
	code := hamming.NewExtended(64, 1, "secded64")
	data := randBytes(kernelBuf, 6)
	enc := code.Encode(data)
	enc[100] ^= 0x10 // one correctable flip so repair logic runs
	b.Run("word", func(b *testing.B) {
		b.SetBytes(kernelBuf)
		for i := 0; i < b.N; i++ {
			if _, _, err := code.Decode(enc, kernelBuf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(kernelBuf)
		for i := 0; i < b.N; i++ {
			if _, _, err := code.DecodeRef(enc, kernelBuf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelBitioWrite(b *testing.B) {
	const fields = 8192
	vals := make([]uint64, fields)
	widths := make([]int, fields)
	rng := rand.New(rand.NewSource(7))
	totalBits := 0
	for i := range vals {
		vals[i] = rng.Uint64()
		widths[i] = 1 + rng.Intn(32) // entropy-coder-sized fields
		totalBits += widths[i]
	}
	b.Run("word", func(b *testing.B) {
		b.SetBytes(int64(totalBits / 8))
		for i := 0; i < b.N; i++ {
			var w bitio.Writer
			for j := range vals {
				w.WriteBits(vals[j], widths[j])
			}
			w.Bytes()
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(totalBits / 8))
		for i := 0; i < b.N; i++ {
			var w bitio.Writer
			for j := range vals {
				for k := widths[j] - 1; k >= 0; k-- {
					w.WriteBit(uint(vals[j] >> uint(k)))
				}
			}
			w.Bytes()
		}
	})
}

func BenchmarkKernelBitioRead(b *testing.B) {
	const fields = 8192
	widths := make([]int, fields)
	rng := rand.New(rand.NewSource(8))
	var w bitio.Writer
	totalBits := 0
	for i := range widths {
		widths[i] = 1 + rng.Intn(32)
		w.WriteBits(rng.Uint64(), widths[i])
		totalBits += widths[i]
	}
	buf := w.Bytes()
	b.Run("word", func(b *testing.B) {
		b.SetBytes(int64(totalBits / 8))
		for i := 0; i < b.N; i++ {
			r := bitio.NewReader(buf)
			for _, n := range widths {
				if _, err := r.ReadBits(n); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(totalBits / 8))
		for i := 0; i < b.N; i++ {
			r := bitio.NewReader(buf)
			for _, n := range widths {
				for k := 0; k < n; k++ {
					if _, err := r.ReadBit(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// BenchmarkKernelRSEncode tracks the Reed-Solomon stripe encoder built
// on the word-level gf256 kernels (no scalar pair: the inner kernel's
// ratio is measured by BenchmarkKernelGF256MulSlice).
func BenchmarkKernelRSEncode(b *testing.B) {
	code, err := reedsolomon.New(8, 2, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	data := randBytes(kernelBuf, 9)
	b.SetBytes(kernelBuf)
	for i := 0; i < b.N; i++ {
		code.Encode(data)
	}
}

// BenchmarkKernelInterleaveEncode tracks the division-free bit
// transpose wrapped around SEC-DED.
func BenchmarkKernelInterleaveEncode(b *testing.B) {
	code, err := interleave.NewSECDED(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	data := randBytes(kernelBuf, 10)
	b.SetBytes(kernelBuf)
	for i := 0; i < b.N; i++ {
		code.Encode(data)
	}
}

// BenchmarkKernelHuffmanDecode tracks the LUT decode path over the
// word-level Peek/Skip reader.
func BenchmarkKernelHuffmanDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	freqs := make([]int64, 256)
	syms := make([]int, 1<<16)
	for i := range syms {
		// Geometric-ish skew so code lengths vary like quantization codes.
		s := rng.Intn(16)
		if rng.Intn(4) == 0 {
			s = rng.Intn(256)
		}
		syms[i] = s
		freqs[s]++
	}
	codec, err := huffman.Build(freqs)
	if err != nil {
		b.Fatal(err)
	}
	var w bitio.Writer
	for _, s := range syms {
		codec.Encode(&w, s)
	}
	buf := w.Bytes()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(buf)
		for range syms {
			if _, err := codec.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
