// Command arcresil reproduces the resiliency evaluation (Section 6.3):
// it reruns the fault-injection study with ARC protecting the
// compressed streams (resiliency = 1 error/MB) and verifies every
// injected single-bit error is corrected, plus a multi-bit burst per
// dataset through a Reed-Solomon configuration. With -matrix it also
// prints the extension experiment: the full ECC x fault-pattern
// recovery matrix.
//
// Usage:
//
//	arcresil [-threads N] [-scale N] [-trials N] [-seed N] [-matrix]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arcresil:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arcresil", flag.ContinueOnError)
	threads := fs.Int("threads", 0, "maximum threads (0 = all CPUs)")
	scale := fs.Int("scale", 1, "dataset grid scale")
	trials := fs.Int("trials", 200, "flips per dataset")
	seed := fs.Int64("seed", 1, "random seed")
	matrix := fs.Bool("matrix", false, "also print the ECC x fault-pattern recovery matrix")
	crossover := fs.Bool("crossover", false, "also print the burst-protection crossover map")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.Sec63(*threads, *scale, *trials, *seed)
	if err != nil {
		return err
	}
	if err := experiments.Sec63Table(rows).Write(out); err != nil {
		return err
	}
	allOK := true
	for _, r := range rows {
		if r.Corrected != r.Trials || !r.BurstCorrected {
			allOK = false
		}
	}
	if allOK {
		if _, err := fmt.Fprintln(out, "RESULT: ARC corrected 100% of injected errors (paper Section 6.3 reproduced)."); err != nil {
			return err
		}
	} else {
		return fmt.Errorf("some injected errors were NOT corrected — reproduction FAILED")
	}
	if *matrix {
		if _, err := fmt.Fprintln(out); err != nil {
			return err
		}
		m, err := experiments.ExtResilienceMatrix(64<<10, *trials, *seed)
		if err != nil {
			return err
		}
		if err := m.Table().Write(out); err != nil {
			return err
		}
	}
	if *crossover {
		if _, err := fmt.Fprintln(out); err != nil {
			return err
		}
		c, err := experiments.ExtCrossover(256<<10, 20, *seed)
		if err != nil {
			return err
		}
		if err := c.Table().Write(out); err != nil {
			return err
		}
	}
	return nil
}
