package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunResiliency(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "1", "-trials", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Section 6.3") || !strings.Contains(s, "corrected 100%") {
		t.Fatalf("bad output:\n%s", s)
	}
}

func TestRunWithMatrix(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "1", "-trials", "15", "-matrix"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recovery matrix") {
		t.Fatal("matrix table missing")
	}
}

func TestRunWithCrossover(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "1", "-trials", "10", "-crossover"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "crossover") {
		t.Fatal("crossover table missing")
	}
}
