// Command arcvet runs this repository's static-analysis suite:
// fifteen repo-specific analyzers over type-checked packages, built
// entirely on the standard library (see internal/analysis and
// docs/STATIC_ANALYSIS.md). Packages are analyzed in topological
// import order, so facts exported about a dependency's functions
// (may-panic, taint summaries, lock and channel effects) are visible
// while analyzing its dependents.
//
// Usage:
//
//	arcvet [-format text|json|sarif] [-analyzers a,b] [-list]
//	       [-cache-dir dir] [-waivercheck] [-timing file] [packages...]
//
// Package patterns are directories relative to the module root, with
// "./..." (the default) expanding recursively. Findings print as
// file:line:col: [analyzer] message, sorted by (file, line, col,
// analyzer) across all packages; -format json emits the same ordering
// as a machine-readable array (-json is a shorthand), and -format
// sarif emits a SARIF 2.1.0 log suitable for GitHub code scanning
// upload. -analyzers restricts the run to a comma-separated subset
// (-only is an older spelling of the same flag). Exit status is 0
// when clean, 1 when findings are reported, and 2 on usage or load
// errors.
//
// -cache-dir enables the incremental fact cache: packages whose
// content key (own sources plus transitive module-local imports) is
// unchanged replay their facts, call-graph slice, and findings from
// disk instead of being re-analyzed. -timing writes a small JSON
// record of the run (wall time, live/cached unit counts, a findings
// hash) for benchmarking the cache. -waivercheck additionally reports
// //arcvet:ignore directives that suppressed nothing; it requires the
// full analyzer set, since a subset run would misread waivers for the
// skipped analyzers as stale.
//
// Individual findings are waived inline with
//
//	//arcvet:ignore <analyzer> <justification>
//
// on the offending line, the line directly above it, or — when the
// finding sits on a continuation line of a multi-line statement — the
// statement's first line.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/analysis"
)

// timingRecord is the -timing output: enough for cmd/benchmeta to
// gate the incremental cache (warm runs must replay everything and
// reproduce the cold run's findings at a real speedup).
type timingRecord struct {
	Schema       string  `json:"schema"`
	WallMs       float64 `json:"wall_ms"`
	Packages     int     `json:"packages"`
	LiveUnits    int     `json:"live_units"`
	CachedUnits  int     `json:"cached_units"`
	Findings     int     `json:"findings"`
	FindingsHash string  `json:"findings_hash"`
}

// writeTiming records the run's shape. The findings hash covers every
// diagnostic's position, analyzer, and message, so equal hashes mean
// equal findings.
func writeTiming(path string, wall time.Duration, res *analysis.Result) error {
	h := sha256.New()
	for _, d := range res.Diagnostics {
		_, _ = fmt.Fprintf(h, "%s:%d:%d:%s:%s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
	rec := timingRecord{
		Schema:       "arcvet-timing-v1",
		WallMs:       float64(wall.Microseconds()) / 1000,
		Packages:     res.Packages,
		LiveUnits:    res.Stats.LiveUnits,
		CachedUnits:  res.Stats.CachedUnits,
		Findings:     len(res.Diagnostics),
		FindingsHash: hex.EncodeToString(h.Sum(nil)),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// say writes a line, explicitly discarding the write error: arcvet's
// own output failing (closed pipe, full disk) must not change its
// verdict, and the exit code is the contract.
func say(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "shorthand for -format json")
	format := fs.String("format", "", "output format: text (default), json, or sarif")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	subset := fs.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	cacheDir := fs.String("cache-dir", "", "directory for the incremental fact cache (empty: no caching)")
	waiverCheck := fs.Bool("waivercheck", false, "report stale //arcvet:ignore directives (requires the full analyzer set)")
	timing := fs.String("timing", "", "write a JSON timing record of the run to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			say(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "", "text", "json", "sarif":
	default:
		say(stderr, "arcvet: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *jsonOut {
		if *format != "" && *format != "json" {
			say(stderr, "arcvet: -json conflicts with -format %s\n", *format)
			return 2
		}
		*format = "json"
	}
	names := *subset
	if *only != "" {
		if names != "" && names != *only {
			say(stderr, "arcvet: -only and -analyzers disagree; pass one\n")
			return 2
		}
		names = *only
	}
	analyzers, err := analysis.ByName(names)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	if *waiverCheck && names != "" {
		say(stderr, "arcvet: -waivercheck requires the full analyzer set; drop -analyzers/-only\n")
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	start := time.Now()
	res, err := analysis.RunWith(loader, dirs, analyzers, analysis.Options{
		CacheDir:    *cacheDir,
		WaiverCheck: *waiverCheck,
	})
	wall := time.Since(start)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	if *timing != "" {
		if err := writeTiming(*timing, wall, res); err != nil {
			say(stderr, "arcvet: %v\n", err)
			return 2
		}
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if res.Diagnostics == nil {
			res.Diagnostics = []analysis.Diagnostic{}
		}
		if err := enc.Encode(res.Diagnostics); err != nil {
			say(stderr, "arcvet: %v\n", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(stdout, cwd, res.Diagnostics); err != nil {
			say(stderr, "arcvet: %v\n", err)
			return 2
		}
	default:
		for _, d := range res.Diagnostics {
			say(stdout, "%s\n", d)
		}
		say(stderr, "arcvet: %d package(s), %d finding(s)\n", res.Packages, len(res.Diagnostics))
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
