// Command arcvet runs this repository's static-analysis suite:
// fourteen repo-specific analyzers over type-checked packages, built
// entirely on the standard library (see internal/analysis and
// docs/STATIC_ANALYSIS.md). Packages are analyzed in topological
// import order, so facts exported about a dependency's functions
// (may-panic, taint summaries, lock and channel effects) are visible
// while analyzing its dependents.
//
// Usage:
//
//	arcvet [-format text|json|sarif] [-analyzers a,b] [-list] [packages...]
//
// Package patterns are directories relative to the module root, with
// "./..." (the default) expanding recursively. Findings print as
// file:line:col: [analyzer] message, sorted by (file, line, col,
// analyzer) across all packages; -format json emits the same ordering
// as a machine-readable array (-json is a shorthand), and -format
// sarif emits a SARIF 2.1.0 log suitable for GitHub code scanning
// upload. -analyzers restricts the run to a comma-separated subset
// (-only is an older spelling of the same flag). Exit status is 0
// when clean, 1 when findings are reported, and 2 on usage or load
// errors.
//
// Individual findings are waived inline with
//
//	//arcvet:ignore <analyzer> <justification>
//
// on the offending line, the line directly above it, or — when the
// finding sits on a continuation line of a multi-line statement — the
// statement's first line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// say writes a line, explicitly discarding the write error: arcvet's
// own output failing (closed pipe, full disk) must not change its
// verdict, and the exit code is the contract.
func say(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "shorthand for -format json")
	format := fs.String("format", "", "output format: text (default), json, or sarif")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	subset := fs.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			say(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "", "text", "json", "sarif":
	default:
		say(stderr, "arcvet: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *jsonOut {
		if *format != "" && *format != "json" {
			say(stderr, "arcvet: -json conflicts with -format %s\n", *format)
			return 2
		}
		*format = "json"
	}
	names := *subset
	if *only != "" {
		if names != "" && names != *only {
			say(stderr, "arcvet: -only and -analyzers disagree; pass one\n")
			return 2
		}
		names = *only
	}
	analyzers, err := analysis.ByName(names)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	res, err := analysis.Run(loader, dirs, analyzers)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if res.Diagnostics == nil {
			res.Diagnostics = []analysis.Diagnostic{}
		}
		if err := enc.Encode(res.Diagnostics); err != nil {
			say(stderr, "arcvet: %v\n", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(stdout, cwd, res.Diagnostics); err != nil {
			say(stderr, "arcvet: %v\n", err)
			return 2
		}
	default:
		for _, d := range res.Diagnostics {
			say(stdout, "%s\n", d)
		}
		say(stderr, "arcvet: %d package(s), %d finding(s)\n", res.Packages, len(res.Diagnostics))
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
