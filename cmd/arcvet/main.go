// Command arcvet runs this repository's static-analysis suite: six
// repo-specific analyzers over type-checked packages, built entirely
// on the standard library (see internal/analysis and
// docs/STATIC_ANALYSIS.md).
//
// Usage:
//
//	arcvet [-json] [-only a,b] [-list] [packages...]
//
// Package patterns are directories relative to the module root, with
// "./..." (the default) expanding recursively. Findings print as
// file:line:col: [analyzer] message; -json emits a machine-readable
// array. Exit status is 0 when clean, 1 when findings are reported,
// and 2 on usage or load errors.
//
// Individual findings are waived inline with
//
//	//arcvet:ignore <analyzer> <justification>
//
// on the offending line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("arcvet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcvet:", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcvet:", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcvet:", err)
		return 2
	}
	res, err := analysis.Run(loader, dirs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcvet:", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if res.Diagnostics == nil {
			res.Diagnostics = []analysis.Diagnostic{}
		}
		if err := enc.Encode(res.Diagnostics); err != nil {
			fmt.Fprintln(os.Stderr, "arcvet:", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "arcvet: %d package(s), %d finding(s)\n", res.Packages, len(res.Diagnostics))
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
