// Command arcvet runs this repository's static-analysis suite: ten
// repo-specific analyzers over type-checked packages, built entirely
// on the standard library (see internal/analysis and
// docs/STATIC_ANALYSIS.md). Packages are analyzed in topological
// import order, so facts exported about a dependency's functions
// (may-panic, taint summaries, WaitGroup effects) are visible while
// analyzing its dependents.
//
// Usage:
//
//	arcvet [-json] [-only a,b] [-list] [packages...]
//
// Package patterns are directories relative to the module root, with
// "./..." (the default) expanding recursively. Findings print as
// file:line:col: [analyzer] message, sorted by (file, line, col,
// analyzer) across all packages; -json emits the same ordering as a
// machine-readable array. Exit status is 0 when clean, 1 when
// findings are reported, and 2 on usage or load errors.
//
// Individual findings are waived inline with
//
//	//arcvet:ignore <analyzer> <justification>
//
// on the offending line, the line directly above it, or — when the
// finding sits on a continuation line of a multi-line statement — the
// statement's first line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// say writes a line, explicitly discarding the write error: arcvet's
// own output failing (closed pipe, full disk) must not change its
// verdict, and the exit code is the contract.
func say(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			say(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*only)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	res, err := analysis.Run(loader, dirs, analyzers)
	if err != nil {
		say(stderr, "arcvet: %v\n", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if res.Diagnostics == nil {
			res.Diagnostics = []analysis.Diagnostic{}
		}
		if err := enc.Encode(res.Diagnostics); err != nil {
			say(stderr, "arcvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			say(stdout, "%s\n", d)
		}
		say(stderr, "arcvet: %d package(s), %d finding(s)\n", res.Packages, len(res.Diagnostics))
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
