package main

import (
	"io"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"unknown analyzer", []string{"-only", "nosuch"}, 2},
		{"unknown flag", []string{"-bogus"}, 2},
		// The driver's own directory must be clean, via both renderers.
		{"self text", []string{"-only", "uncheckederr", "."}, 0},
		{"self json", []string{"-json", "-only", "bitwidth", "."}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args, io.Discard, io.Discard); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
