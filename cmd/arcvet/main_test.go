package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"unknown analyzer", []string{"-only", "nosuch"}, 2},
		{"unknown analyzers flag value", []string{"-analyzers", "nosuch"}, 2},
		{"unknown flag", []string{"-bogus"}, 2},
		{"unknown format", []string{"-format", "xml"}, 2},
		{"json conflicts with sarif", []string{"-json", "-format", "sarif"}, 2},
		{"only and analyzers disagree", []string{"-only", "bitwidth", "-analyzers", "deadwait"}, 2},
		{"waivercheck with subset", []string{"-waivercheck", "-analyzers", "bitwidth", "."}, 2},
		{"waivercheck with only", []string{"-waivercheck", "-only", "bitwidth", "."}, 2},
		// The driver's own directory must be clean, via all renderers.
		{"self text", []string{"-only", "uncheckederr", "."}, 0},
		{"self json", []string{"-json", "-only", "bitwidth", "."}, 0},
		{"self sarif", []string{"-format", "sarif", "-analyzers", "lockorder,chansafety,ctxflow", "."}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args, io.Discard, io.Discard); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestUnknownAnalyzerListsValidNames pins the -analyzers typo
// experience: the error must exit 2 and name every valid analyzer so
// the fix does not require a second -list invocation.
func TestUnknownAnalyzerListsValidNames(t *testing.T) {
	var errOut bytes.Buffer
	if got := run([]string{"-analyzers", "nosuch", "."}, io.Discard, &errOut); got != 2 {
		t.Fatalf("run = %d, want 2", got)
	}
	msg := errOut.String()
	if !strings.Contains(msg, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr %q does not identify the unknown name", msg)
	}
	for _, want := range []string{"integrityflow", "uncheckederr", "panicfact", "lockorder"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stderr %q does not list valid analyzer %q", msg, want)
		}
	}
}

// TestTimingAndCacheFlags runs the same directory cold then warm
// through a temp cache and checks the -timing records show a full
// replay with identical findings.
func TestTimingAndCacheFlags(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	coldPath := filepath.Join(t.TempDir(), "cold.json")
	warmPath := filepath.Join(t.TempDir(), "warm.json")
	read := func(path string) timingRecord {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rec timingRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	if got := run([]string{"-cache-dir", cacheDir, "-timing", coldPath, "."}, io.Discard, io.Discard); got != 0 {
		t.Fatalf("cold run = %d, want 0", got)
	}
	if got := run([]string{"-cache-dir", cacheDir, "-timing", warmPath, "."}, io.Discard, io.Discard); got != 0 {
		t.Fatalf("warm run = %d, want 0", got)
	}
	cold, warm := read(coldPath), read(warmPath)
	if cold.Schema != "arcvet-timing-v1" || warm.Schema != "arcvet-timing-v1" {
		t.Fatalf("bad schema: cold %q warm %q", cold.Schema, warm.Schema)
	}
	if cold.LiveUnits == 0 || cold.CachedUnits != 0 {
		t.Errorf("cold run: live=%d cached=%d, want all live", cold.LiveUnits, cold.CachedUnits)
	}
	if warm.LiveUnits != 0 || warm.CachedUnits != cold.LiveUnits {
		t.Errorf("warm run: live=%d cached=%d, want 0/%d", warm.LiveUnits, warm.CachedUnits, cold.LiveUnits)
	}
	if warm.FindingsHash != cold.FindingsHash {
		t.Errorf("findings hash changed across warm replay: %s vs %s", cold.FindingsHash, warm.FindingsHash)
	}
}

// TestSARIFOutput checks the emitted document is well-formed SARIF
// 2.1.0 carrying the driver name code scanning keys uploads under,
// even for a clean run (the upload step always runs, findings or
// not), and that results is an array rather than null.
func TestSARIFOutput(t *testing.T) {
	var out bytes.Buffer
	if got := run([]string{"-format", "sarif", "-analyzers", "lockorder", "."}, &out, io.Discard); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "arcvet" {
		t.Errorf("runs/driver malformed: %+v", log.Runs)
	}
	if log.Runs[0].Results == nil {
		t.Error("results is null; code scanning requires an empty array")
	}
}
