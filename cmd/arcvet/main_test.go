package main

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"unknown analyzer", []string{"-only", "nosuch"}, 2},
		{"unknown analyzers flag value", []string{"-analyzers", "nosuch"}, 2},
		{"unknown flag", []string{"-bogus"}, 2},
		{"unknown format", []string{"-format", "xml"}, 2},
		{"json conflicts with sarif", []string{"-json", "-format", "sarif"}, 2},
		{"only and analyzers disagree", []string{"-only", "bitwidth", "-analyzers", "deadwait"}, 2},
		// The driver's own directory must be clean, via all renderers.
		{"self text", []string{"-only", "uncheckederr", "."}, 0},
		{"self json", []string{"-json", "-only", "bitwidth", "."}, 0},
		{"self sarif", []string{"-format", "sarif", "-analyzers", "lockorder,chansafety,ctxflow", "."}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args, io.Discard, io.Discard); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestSARIFOutput checks the emitted document is well-formed SARIF
// 2.1.0 carrying the driver name code scanning keys uploads under,
// even for a clean run (the upload step always runs, findings or
// not), and that results is an array rather than null.
func TestSARIFOutput(t *testing.T) {
	var out bytes.Buffer
	if got := run([]string{"-format", "sarif", "-analyzers", "lockorder", "."}, &out, io.Discard); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "arcvet" {
		t.Errorf("runs/driver malformed: %+v", log.Runs)
	}
	if log.Runs[0].Results == nil {
		t.Error("results is null; code scanning requires an empty array")
	}
}
