package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTrainSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "1,2", "-sample-kb", "16"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 6") || !strings.Contains(s, "configs trained") {
		t.Fatalf("bad output:\n%s", s)
	}
}

func TestRunRejectsBadThreads(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "1,zero"}, &out); err == nil {
		t.Fatal("bad thread list must fail")
	}
	if err := run([]string{"-threads", "0"}, &out); err == nil {
		t.Fatal("non-positive thread count must fail")
	}
}
