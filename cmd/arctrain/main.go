// Command arctrain reproduces Figure 6: ARC's training cost and the
// number of configurations trained at increasing thread caps.
//
// Usage:
//
//	arctrain [-threads 1,2,4,8] [-sample-kb 256]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arctrain:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arctrain", flag.ContinueOnError)
	threads := fs.String("threads", "1,2,4,8", "comma-separated max-thread settings to sweep")
	sampleKB := fs.Int("sample-kb", 256, "training sample size in KiB")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ts []int
	for _, s := range strings.Split(*threads, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad thread count %q", s)
		}
		ts = append(ts, v)
	}
	r, err := experiments.Fig6(ts, *sampleKB<<10)
	if err != nil {
		return err
	}
	if err := r.Table().Write(out); err != nil {
		return err
	}
	return nil
}
