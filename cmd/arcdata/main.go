// Command arcdata generates the repository's synthetic study datasets
// as raw little-endian files (SDRBench layout), and inspects raw files.
//
// Usage:
//
//	arcdata gen -name CESM|Isabel|NYX -scale N -seed N -dtype f32|f64 -out FILE
//	arcdata info -in FILE -dims Z,Y,X -dtype f32|f64
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/datasets"
	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arcdata:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: arcdata gen|info ...")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:], out)
	case "info":
		return cmdInfo(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	name := fs.String("name", "CESM", "dataset: CESM, Isabel, or NYX")
	scale := fs.Int("scale", 1, "grid scale")
	seed := fs.Int64("seed", 1, "random seed")
	dtypeS := fs.String("dtype", "f32", "element type: f32 or f64")
	outPath := fs.String("out", "", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("gen: -out is required")
	}
	dtype, err := parseDType(*dtypeS)
	if err != nil {
		return err
	}
	field, err := datasets.ByName(*name, *scale, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := datasets.WriteRaw(f, field, dtype); err != nil {
		_ = f.Close() // error path: the write error wins
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "wrote %s: dims %v, %d elements, %s\n", *outPath, field.Dims, field.N(), *dtypeS)
	return err
}

func cmdInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("in", "", "input file")
	dimsS := fs.String("dims", "", "comma-separated dimensions, slowest first")
	dtypeS := fs.String("dtype", "f32", "element type: f32 or f64")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *dimsS == "" {
		return fmt.Errorf("info: -in and -dims are required")
	}
	dtype, err := parseDType(*dtypeS)
	if err != nil {
		return err
	}
	var dims []int
	for _, s := range strings.Split(*dimsS, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad dimension %q", s)
		}
		dims = append(dims, v)
	}
	field, err := datasets.LoadRaw(*in, dims, dtype)
	if err != nil {
		return err
	}
	lo, hi := metrics.Range(field.Data)
	_, err = fmt.Fprintf(out, "file:     %s\ndims:     %v (%d elements)\nrange:    [%g, %g]\nmean:     %g\n",
		*in, field.Dims, field.N(), lo, hi, mean(field.Data))
	return err
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func parseDType(s string) (datasets.DType, error) {
	switch s {
	case "f32":
		return datasets.Float32, nil
	case "f64":
		return datasets.Float64, nil
	default:
		return 0, fmt.Errorf("unknown dtype %q (want f32 or f64)", s)
	}
}
