package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenAndInfo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cesm.f32")
	var out bytes.Buffer
	if err := run([]string{"gen", "-name", "CESM", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("gen output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"info", "-in", path, "-dims", "32,64", "-dtype", "f32"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "2048 elements") || !strings.Contains(s, "range:") {
		t.Fatalf("info output:\n%s", s)
	}
	// Wrong dims reported helpfully.
	if err := run([]string{"info", "-in", path, "-dims", "32,65", "-dtype", "f32"}, &out); err == nil {
		t.Fatal("dims mismatch must fail")
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no args must fail")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Fatal("unknown subcommand must fail")
	}
	if err := run([]string{"gen"}, &out); err == nil {
		t.Fatal("gen without -out must fail")
	}
	if err := run([]string{"gen", "-out", "x", "-dtype", "f16"}, &out); err == nil {
		t.Fatal("bad dtype must fail")
	}
	if err := run([]string{"gen", "-out", "/nonexistent-dir/x", "-name", "CESM"}, &out); err == nil {
		t.Fatal("unwritable output must fail")
	}
	if err := run([]string{"info", "-in", "x"}, &out); err == nil {
		t.Fatal("info without dims must fail")
	}
}
