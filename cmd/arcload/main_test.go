package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestArcloadAgainstLiveServer runs the harness end to end against an
// in-process arcd with fault injection on, and checks the JSON result
// carries a clean integrity verdict.
func TestArcloadAgainstLiveServer(t *testing.T) {
	s := service.New(service.Config{Workers: 2})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }() // workload completes before this

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out, errw bytes.Buffer
	err = run(ctx, []string{
		"-addr", addr.String(),
		"-clients", "3",
		"-requests", "25",
		"-max-size", "8192",
		"-corrupt", "0.5",
		"-seed", "11",
	}, &out, &errw)
	if err != nil {
		t.Fatalf("arcload: %v\n%s", err, errw.String())
	}

	var res service.WorkloadResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not a workload result: %v", err)
	}
	if res.Requests != 75 || res.Errors != 0 || res.SilentMismatches != 0 {
		t.Fatalf("workload result: %+v", res)
	}
	if res.InjectedWithin == 0 || res.RepairedWithin != res.InjectedWithin {
		t.Fatalf("fault injection accounting: %+v", res)
	}
	if !strings.Contains(errw.String(), "req/s") || !strings.Contains(errw.String(), "silent mismatches 0") {
		t.Fatalf("summary missing from stderr:\n%s", errw.String())
	}
}

func TestArcloadBadFlagsAndDeadServer(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Nothing listens on a fresh ephemeral-range port 1 — the dial must
	// fail loudly, not hang or report a healthy empty run.
	if err := run(ctx, []string{"-addr", "127.0.0.1:1", "-clients", "1", "-requests", "1"}, &out, &errw); err == nil {
		t.Fatal("dead server produced a successful run")
	}
}
