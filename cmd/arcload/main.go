// Command arcload is the workload harness for arcd: it hammers a
// running daemon with a configurable mix of encode/decode/verify/
// repair traffic over Zipf-skewed payload sizes, optionally corrupting
// containers mid-flight — within or beyond the ECC budget — and
// byte-checks every response against ground truth.
//
//	arcload -addr 127.0.0.1:7410 -clients 8 -requests 200 -corrupt 0.5
//
// The machine-readable workload result goes to stdout as JSON (pipe it
// to `benchmeta service` for the gated artifact); a human summary goes
// to stderr. The exit status is about the harness, not the service:
// integrity verdicts (silent mismatches, unrepaired corruptions) are
// in the JSON for the gate to judge.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/service"
)

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("arcload", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr        = fs.String("addr", "127.0.0.1:7410", "arcd address to load")
		clients     = fs.Int("clients", 4, "concurrent client connections")
		requests    = fs.Int("requests", 50, "requests per client")
		encodeRatio = fs.Float64("encode-ratio", 0.5, "fraction of requests that are encodes")
		minSize     = fs.Int("min-size", 64, "smallest payload in bytes")
		maxSize     = fs.Int("max-size", 256<<10, "largest payload in bytes")
		zipfS       = fs.Float64("zipf", 1.4, "Zipf skew of payload sizes (>1; larger favors small payloads)")
		corrupt     = fs.Float64("corrupt", 0, "fraction of decode-side containers corrupted mid-flight")
		overBudget  = fs.Float64("over-budget", 0.25, "fraction of corruptions pushed beyond the ECC budget")
		maxFlips    = fs.Int("max-flips", 3, "within-budget bit flips per corrupted container")
		seed        = fs.Int64("seed", 1, "workload RNG seed")
		rangeArch   = fs.String("range-archive", "", "archive name (in the server's -root) for READ_RANGE traffic")
		rangeFile   = fs.String("range-file", "", "plaintext file the range archive encodes (ground truth for byte checks)")
		rangeRatio  = fs.Float64("range-ratio", 0, "fraction of requests issued as ranged reads (requires -range-archive)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var rangePlain []byte
	if *rangeRatio > 0 {
		var err error
		rangePlain, err = os.ReadFile(*rangeFile)
		if err != nil {
			return fmt.Errorf("arcload: -range-file: %w", err)
		}
	}

	res, err := service.RunWorkload(ctx, service.WorkloadOptions{
		Addr:           *addr,
		Clients:        *clients,
		Requests:       *requests,
		EncodeRatio:    *encodeRatio,
		MinSize:        *minSize,
		MaxSize:        *maxSize,
		ZipfS:          *zipfS,
		CorruptRate:    *corrupt,
		OverBudgetRate: *overBudget,
		MaxFlips:       *maxFlips,
		Seed:           *seed,
		RangeRatio:     *rangeRatio,
		RangeArchive:   *rangeArch,
		RangePlain:     rangePlain,
	})
	if err != nil {
		return err
	}

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, string(b)); err != nil {
		return err
	}
	_, _ = fmt.Fprintf(errw, // summary is best-effort; the JSON on stdout is the contract
		"arcload: %d requests (%d enc / %d dec / %d ver / %d rep / %d range) in %.0fms: %.0f req/s, %.1f MB/s, p50 %.2fms p99 %.2fms\n",
		res.Requests, res.Encodes, res.Decodes, res.Verifies, res.Repairs, res.RangeReads,
		res.ElapsedMs, res.RequestsPerS, res.ThroughputMBs, res.Latency.P50Ms, res.Latency.P99Ms)
	_, _ = fmt.Fprintf(errw, // as above
		"arcload: injected %d within-budget (%d bits) + %d over-budget; repaired %d, reported %d, silent mismatches %d, errors %d\n",
		res.InjectedWithin, res.InjectedWithinBits, res.InjectedOver,
		res.RepairedWithin, res.ReportedOver, res.SilentMismatches, res.Errors)
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "arcload:", err)
		os.Exit(1)
	}
}
