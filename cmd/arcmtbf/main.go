// Command arcmtbf reproduces the ease-of-use evaluation (Section 6.4):
// the failure-rate model of the Cielo and Hopper supercomputers, their
// mean time between soft-error failures, and the ARC constraint each
// system's fault mix recommends.
//
// Usage:
//
//	arcmtbf [-verbose]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/failmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arcmtbf:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arcmtbf", flag.ContinueOnError)
	verbose := fs.Bool("verbose", false, "print per-system rationale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := experiments.Sec64().Table().Write(out); err != nil {
		return err
	}
	if *verbose {
		for _, s := range []failmodel.System{failmodel.Cielo(), failmodel.Hopper()} {
			rec := failmodel.Recommend(s)
			if _, err := fmt.Fprintf(out, "%s: %s\n\n", s.Name, rec.Rationale); err != nil {
				return err
			}
		}
	}
	return nil
}
