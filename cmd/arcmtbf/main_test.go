package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Cielo", "Hopper", "1.90", "5.43"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunVerbose(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-verbose"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ARC_COR_BURST") {
		t.Fatal("rationale missing")
	}
}
