// Command arcperf reproduces the performance evaluation (Section 6.2):
// Figure 11 (constraint satisfaction with ARC_ANY_ECC) and Figure 12
// (single-ECC target vs true overhead/throughput).
//
// Usage:
//
//	arcperf [-threads N] [-scale N] [-seed N] any|single|all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arcperf:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arcperf", flag.ContinueOnError)
	threads := fs.Int("threads", 0, "maximum threads (0 = all CPUs)")
	scale := fs.Int("scale", 2, "dataset grid scale")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	which := "all"
	if fs.NArg() > 0 {
		which = fs.Arg(0)
	}
	switch which {
	case "any", "single", "all":
	default:
		return fmt.Errorf("unknown sweep %q (want any, single, or all)", which)
	}
	if which == "any" || which == "all" {
		r, err := experiments.Fig11(*threads, *scale, *seed, nil, nil)
		if err != nil {
			return err
		}
		if err := r.Table().Write(out); err != nil {
			return err
		}
		if err := r.BWTable().Write(out); err != nil {
			return err
		}
	}
	if which == "single" || which == "all" {
		r, err := experiments.Fig12(*threads, *scale, *seed, nil)
		if err != nil {
			return err
		}
		if err := r.Table().Write(out); err != nil {
			return err
		}
		if err := r.BWTable().Write(out); err != nil {
			return err
		}
	}
	return nil
}
