package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAnySweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "1", "-scale", "1", "any"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 11a") || !strings.Contains(s, "Figure 11b") {
		t.Fatalf("missing tables:\n%s", s)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Fatal("unknown sweep must fail")
	}
}
