// Command arc encodes and decodes files with ARC protection.
//
// Usage:
//
//	arc encode -in data.sz -out data.arc [-mem 0.2] [-bw 100] [-ecc rs|secded|hamming|parity] [-errors-per-mb 1]
//	arc decode -in data.arc -out data.sz
//	arc inspect -in data.arc
//
// encode picks the optimal ECC configuration under the given
// constraints (omitting them lifts the bound, as in the paper's
// ARC_ANY_* flags); decode verifies, repairs, and writes the original
// bytes; inspect prints the container's configuration.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	arc "repro"
	"repro/internal/ecc"
	"repro/internal/profiling"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  arc encode -in FILE -out FILE [-mem FRAC] [-bw MBS] [-ecc NAME] [-errors-per-mb N] [-threads N] [-chunk-kb N] [-pipeline N]
  arc decode -in FILE -out FILE [-threads N] [-pipeline N] [-range FIRST:COUNT]
  arc verify -in FILE [-threads N] [-pipeline N]
  arc inspect -in FILE
encode, decode, and verify also accept -cpuprofile FILE and
-memprofile FILE to capture runtime/pprof profiles of the run.`)
}

// stopProfile folds a profiling stop error into the command's named
// return, so a profile that failed to land on disk exits non-zero
// without masking the command's own error.
func stopProfile(stop func() error, err *error) {
	if perr := stop(); perr != nil && *err == nil {
		*err = perr
	}
}

func cmdEncode(args []string) (err error) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	out := fs.String("out", "", "output file")
	mem := fs.Float64("mem", arc.AnyMem, "storage-overhead budget as a fraction (default: unbounded)")
	bw := fs.Float64("bw", arc.AnyBW, "minimum encode throughput in MB/s (default: unbounded)")
	eccName := fs.String("ecc", "", "restrict to one ECC method: parity|hamming|secded|rs")
	errPerMB := fs.Float64("errors-per-mb", 0, "expected soft errors per MB to correct")
	threads := fs.Int("threads", arc.AnyThreads, "maximum threads (0 = all)")
	chunkKB := fs.Int("chunk-kb", 0, "stream in chunks of this many KiB (0 = single container)")
	pipeline := fs.Int("pipeline", 0, "chunks encoded concurrently (1 = sequential, 0 = auto)")
	prof := profiling.AddFlags(fs)
	_ = fs.Parse(args) // flag.ExitOnError: Parse exits instead of returning

	if *in == "" || *out == "" {
		return errors.New("encode: -in and -out are required")
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProfile(stopProf, &err)
	res := arc.AnyECC
	if *eccName != "" {
		m, err := parseMethod(*eccName)
		if err != nil {
			return err
		}
		res.Methods = []ecc.Method{m}
	}
	res.ErrorsPerMB = *errPerMB

	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	a, err := arc.Init(*threads)
	if err != nil {
		return err
	}
	defer a.Close()
	if *chunkKB > 0 {
		opts := arc.StreamOptions{ChunkSize: *chunkKB << 10, Pipeline: *pipeline}
		choice, written, err := a.EncodeFileWith(*in, *out, *mem, *bw, res, opts)
		if err != nil {
			return err
		}
		fmt.Printf("arc: %s, streamed %d -> %d bytes\n", choice.Config, len(data), written)
		warn(choice)
		return nil
	}
	er, err := a.Encode(data, *mem, *bw, res)
	if err != nil {
		return err
	}
	c := er.Choice
	fmt.Printf("arc: %s (threads=%d, overhead %.2f%%, predicted %.1f MB/s)\n",
		c.Config, c.Threads, 100*er.ActualOverhead, c.PredictedEncMBs)
	warn(c)
	return os.WriteFile(*out, er.Encoded, 0o644)
}

func warn(c arc.Choice) {
	if c.OverBudget {
		fmt.Println("arc: warning: no configuration fit the memory budget; using the closest above it")
	}
	if c.UnderThroughput {
		fmt.Println("arc: warning: predicted throughput misses the requested bound")
	}
}

func cmdDecode(args []string) (err error) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	out := fs.String("out", "", "output file")
	threads := fs.Int("threads", arc.AnyThreads, "maximum threads (0 = all)")
	pipeline := fs.Int("pipeline", 0, "chunks decoded concurrently (1 = sequential, 0 = auto)")
	rng := fs.String("range", "", "decode only FIRST:COUNT original bytes (v2 archives seek; v1 scan)")
	prof := profiling.AddFlags(fs)
	_ = fs.Parse(args) // flag.ExitOnError: Parse exits instead of returning
	if *in == "" || *out == "" {
		return errors.New("decode: -in and -out are required")
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProfile(stopProf, &err)
	if *rng != "" {
		return decodeRange(*in, *out, *rng, *threads, *pipeline)
	}
	// The streaming reader handles both single containers and chunked
	// streams; on uncorrectable damage, everything before the bad chunk
	// has already been written (best effort), matching arc_decode.
	rep, err := arc.DecodeFileWith(*in, *out, *threads, arc.StreamOptions{Pipeline: *pipeline})
	if err != nil {
		if errors.Is(err, ecc.ErrUncorrectable) {
			return fmt.Errorf("uncorrectable damage detected (best-effort data written): %w", err)
		}
		return err
	}
	if rep.DetectedBlocks > 0 {
		fmt.Printf("arc: repaired %d block(s) (%d bit corrections)\n", rep.CorrectedBlocks, rep.CorrectedBits)
	}
	return nil
}

// decodeRange serves `arc decode -range FIRST:COUNT`: it decodes only
// the chunks covering the requested original-byte window and writes
// those bytes to out. Indexed (v2) archives seek straight to the
// covering chunks; v1 streams fall back to a header scan.
func decodeRange(in, out, spec string, threads, pipeline int) error {
	first, count, err := parseRange(spec)
	if err != nil {
		return err
	}
	r, err := arc.OpenFileReaderAt(in, arc.RangeOptions{Workers: threads, Pipeline: pipeline})
	if err != nil {
		return err
	}
	defer r.Close()
	buf := make([]byte, count)
	got, rep, err := r.ReadRange(buf, first, count)
	if err != nil && err != io.EOF {
		if errors.Is(err, ecc.ErrUncorrectable) {
			return fmt.Errorf("uncorrectable damage in the requested range: %w", err)
		}
		return err
	}
	if err := os.WriteFile(out, buf[:got], 0o644); err != nil {
		return err
	}
	mode := "indexed"
	if !r.Indexed() {
		mode = "scanned"
	}
	fmt.Printf("arc: wrote %d byte(s) at offset %d (%s, %d chunk(s) decoded)\n", got, first, mode, rep.Chunks)
	if rep.DetectedBlocks > 0 {
		fmt.Printf("arc: repaired %d block(s) (%d bit corrections)\n", rep.CorrectedBlocks, rep.CorrectedBits)
	}
	if int64(got) < count {
		fmt.Printf("arc: range ran past the end of the archive (%d bytes total)\n", r.Size())
	}
	return nil
}

// parseRange parses the FIRST:COUNT argument of -range.
func parseRange(spec string) (first, count int64, err error) {
	f, c, ok := strings.Cut(spec, ":")
	if ok {
		first, err = strconv.ParseInt(f, 10, 64)
		if err == nil {
			count, err = strconv.ParseInt(c, 10, 64)
		}
	}
	if !ok || err != nil || first < 0 || count < 0 {
		return 0, 0, fmt.Errorf("decode: -range wants FIRST:COUNT (non-negative byte offsets), got %q", spec)
	}
	return first, count, nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	_ = fs.Parse(args) // flag.ExitOnError: Parse exits instead of returning
	if *in == "" {
		return errors.New("inspect: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	infos, ierr := arc.InspectStream(f)
	totalOrig, totalEnc := 0, 0
	for i, ci := range infos {
		fmt.Printf("chunk %d: %s, %d -> %d bytes\n", i, ci.Config, ci.OrigLen, ci.EncLen)
		totalOrig += ci.OrigLen
		totalEnc += ci.EncLen
	}
	fmt.Printf("chunks:        %d\n", len(infos))
	fmt.Printf("original size: %d bytes\n", totalOrig)
	fmt.Printf("encoded size:  %d bytes (+ %d header bytes/chunk)\n", totalEnc, arc.ContainerOverheadBytes)
	if ierr != nil {
		fmt.Printf("status:        DAMAGED (%v)\n", ierr)
		return nil
	}
	fmt.Printf("status:        headers ok (run decode to verify payloads)\n")
	return nil
}

func parseMethod(s string) (ecc.Method, error) {
	switch s {
	case "parity":
		return arc.Parity, nil
	case "hamming":
		return arc.Hamming, nil
	case "secded":
		return arc.SECDED, nil
	case "rs", "reed-solomon", "reedsolomon":
		return arc.ReedSolomon, nil
	default:
		return 0, fmt.Errorf("unknown ECC method %q", s)
	}
}

func cmdVerify(args []string) (err error) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	threads := fs.Int("threads", arc.AnyThreads, "maximum threads (0 = all)")
	pipeline := fs.Int("pipeline", 0, "chunks verified concurrently (1 = sequential, 0 = auto)")
	prof := profiling.AddFlags(fs)
	_ = fs.Parse(args) // flag.ExitOnError: Parse exits instead of returning
	if *in == "" {
		return errors.New("verify: -in is required")
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProfile(stopProf, &err)
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := arc.NewReaderWith(f, *threads, arc.StreamOptions{Pipeline: *pipeline})
	defer r.Close()
	_, cerr := io.Copy(io.Discard, r)
	rep := r.Report()
	fmt.Printf("chunks:    %d\n", rep.Chunks)
	fmt.Printf("detected:  %d block(s)\n", rep.DetectedBlocks)
	fmt.Printf("corrected: %d block(s) (%d bit corrections)\n", rep.CorrectedBlocks, rep.CorrectedBits)
	if cerr != nil {
		return fmt.Errorf("verification FAILED: %w", cerr)
	}
	if rep.DetectedBlocks > 0 {
		fmt.Println("status:    CORRECTABLE damage present — re-encode recommended")
	} else {
		fmt.Println("status:    clean")
	}
	return nil
}
