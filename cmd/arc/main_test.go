package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestMain(m *testing.M) {
	// Keep the training cache out of the user's real cache directory.
	dir, err := os.MkdirTemp("", "arc-cmd-test")
	if err != nil {
		panic(err)
	}
	if err := os.Setenv("ARC_CACHE_DIR", dir); err != nil {
		panic(err)
	}
	code := m.Run()
	_ = os.RemoveAll(dir) // best-effort temp-dir cleanup
	os.Exit(code)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	enc := filepath.Join(dir, "enc.arc")
	out := filepath.Join(dir, "out.bin")
	data := bytes.Repeat([]byte("scientific checkpoint data "), 2000)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEncode([]string{"-in", in, "-out", enc, "-mem", "0.2", "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecode([]string{"-in", enc, "-out", out, "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := cmdInspect([]string{"-in", enc}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRepairsDamage(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	enc := filepath.Join(dir, "enc.arc")
	out := filepath.Join(dir, "out.bin")
	data := bytes.Repeat([]byte{0xAB, 0xCD}, 20000)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEncode([]string{"-in", in, "-out", enc, "-errors-per-mb", "1", "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(enc)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x08
	if err := os.WriteFile(enc, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecode([]string{"-in", enc, "-out", out, "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("damage not repaired")
	}
}

func TestEncodeECCFilterFlag(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	enc := filepath.Join(dir, "enc.arc")
	if err := os.WriteFile(in, make([]byte, 10000), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"parity", "hamming", "secded", "rs"} {
		if err := cmdEncode([]string{"-in", in, "-out", enc, "-ecc", name, "-threads", "1"}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMissingArgs(t *testing.T) {
	if err := cmdEncode([]string{"-in", "x"}); err == nil {
		t.Fatal("encode without -out must fail")
	}
	if err := cmdDecode([]string{"-out", "x"}); err == nil {
		t.Fatal("decode without -in must fail")
	}
	if err := cmdInspect(nil); err == nil {
		t.Fatal("inspect without -in must fail")
	}
}

func TestParseMethod(t *testing.T) {
	for _, good := range []string{"parity", "hamming", "secded", "rs", "reed-solomon", "reedsolomon"} {
		if _, err := parseMethod(good); err != nil {
			t.Fatalf("%s: %v", good, err)
		}
	}
	if _, err := parseMethod("bch"); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestUncorrectableDamageReported(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	enc := filepath.Join(dir, "enc.arc")
	out := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(in, make([]byte, 5000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEncode([]string{"-in", in, "-out", enc, "-ecc", "parity", "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	buf, _ := os.ReadFile(enc)
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(enc, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmdDecode([]string{"-in", enc, "-out", out, "-threads", "1"})
	if err == nil {
		t.Fatal("parity-detected damage must surface as an error")
	}
	// Best-effort data must still have been written.
	if _, serr := os.Stat(out); serr != nil {
		t.Fatal("best-effort output missing")
	}
}

func TestVerifyCleanAndDamaged(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	enc := filepath.Join(dir, "enc.arc")
	if err := os.WriteFile(in, make([]byte, 20000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEncode([]string{"-in", in, "-out", enc, "-errors-per-mb", "1", "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-in", enc, "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	// Damage within repair ability: verify succeeds but reports it.
	buf, _ := os.ReadFile(enc)
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(enc, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-in", enc, "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-in", "/nonexistent"}); err == nil {
		t.Fatal("missing file must fail")
	}
	if err := cmdVerify(nil); err == nil {
		t.Fatal("missing -in must fail")
	}
}

func TestEncodeWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	enc := filepath.Join(dir, "enc.arc")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	data := bytes.Repeat([]byte("profile me "), 4000)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmdEncode([]string{"-in", in, "-out", enc, "-threads", "1",
		"-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
