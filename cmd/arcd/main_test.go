package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestArcdServesAndDrains boots the daemon exactly as a script would —
// ephemeral port, addrfile — drives a request through it, then sends
// the shutdown signal (ctx cancel) and checks the drain completes.
func TestArcdServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	addrfile := filepath.Join(dir, "arcd.addr")

	ctx, cancel := context.WithCancel(context.Background())
	var errw bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile, "-workers", "2"}, &errw)
	}()

	addr := waitForAddrFile(t, addrfile)

	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ccancel()
	c, err := service.Dial(cctx, addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("daemon round trip")
	container, err := c.Encode(cctx, 0, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Decode(cctx, container)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip through the daemon failed: %v", err)
	}
	_ = c.Close() // done with the client; the daemon shutdown is the test

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("arcd did not drain after the stop signal")
	}
	if out := errw.String(); !strings.Contains(out, "listening on") || !strings.Contains(out, "served") {
		t.Fatalf("unexpected daemon log:\n%s", out)
	}
}

func waitForAddrFile(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil {
			return strings.TrimSpace(string(b))
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("addrfile never appeared")
	return ""
}

func TestArcdBadFlags(t *testing.T) {
	var errw bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bogus"}, &errw); err == nil {
		t.Fatal("unbindable address accepted")
	}
}
