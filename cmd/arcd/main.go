// Command arcd is the ARC archive service: a TCP daemon that encodes,
// decodes, verifies, and repairs ARC containers for many concurrent
// clients over the framed protocol of internal/service.
//
//	arcd -addr 127.0.0.1:7410 -workers 8
//
// The daemon serves until SIGINT/SIGTERM, then drains: in-flight
// requests finish and their responses flush before the process exits
// (bounded by -drain). -addrfile writes the bound address to a file
// once listening, which is how scripts drive an ephemeral-port daemon
// (see verify.sh's service smoke). See docs/SERVICE.md for the
// protocol and the operational model.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func run(ctx context.Context, args []string, errw io.Writer) error {
	fs := flag.NewFlagSet("arcd", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr     = fs.String("addr", "127.0.0.1:7410", "address to listen on (use :0 for an ephemeral port)")
		workers  = fs.Int("workers", 0, "shared worker budget across all connections (0 = GOMAXPROCS)")
		window   = fs.Int("window", 0, "in-flight requests per connection (0 = default)")
		maxFrame = fs.Int("max-frame", 0, "largest accepted request payload in bytes (0 = default)")
		threads  = fs.Int("threads", 0, "per-request codec parallelism (0 = 1)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful shutdown budget before connections are severed")
		addrfile = fs.String("addrfile", "", "write the bound address to this file once listening")
		root     = fs.String("root", "", "directory of ARC archives served to READ_RANGE requests (empty disables)")
		cacheMB  = fs.Int("cache-mb", 0, "decoded-chunk cache budget in MiB for ranged reads (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := service.New(service.Config{
		Workers:    *workers,
		Window:     *window,
		MaxPayload: *maxFrame,
		Threads:    *threads,
		Root:       *root,
		CacheBytes: int64(*cacheMB) << 20,
	})
	bound, err := s.Listen(*addr)
	if err != nil {
		return err
	}
	if *addrfile != "" {
		// Write-then-rename so a watching script never reads a partial
		// address.
		tmp := *addrfile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound.String()+"\n"), 0o644); err != nil {
			_ = s.Close() // listener is up; tear it down before failing
			return err
		}
		if err := os.Rename(tmp, *addrfile); err != nil {
			_ = s.Close() // as above
			return err
		}
	}
	_, _ = fmt.Fprintf(errw, "arcd: listening on %s\n", bound) // progress line; best-effort

	<-ctx.Done()
	_, _ = fmt.Fprintf(errw, "arcd: draining (budget %s)\n", *drain) // progress line; best-effort
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		return fmt.Errorf("arcd: drain incomplete: %w", err)
	}
	snap := s.Stats()
	_, _ = fmt.Fprintf(errw, "arcd: served %d requests on %d connections, repaired %d, %d uncorrectable\n", // progress line; best-effort
		snap.Requests, snap.ConnsTotal, snap.RepairedRequests, snap.Uncorrectable)
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "arcd:", err)
		os.Exit(1)
	}
}
