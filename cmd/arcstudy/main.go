// Command arcstudy runs the paper's fault-injection study (Section 4)
// and prints the data behind Figures 1-5.
//
// Usage:
//
//	arcstudy [-scale N] [-trials N] [-seed N] [-workers N] [-cpuprofile FILE] [-memprofile FILE] fig1|fig2|fig3|fig4|fig5|all
//
// Scale 1 keeps a full run under a minute on a laptop; the paper's
// full-size datasets correspond to much larger scales (and hours of
// compute), with identical qualitative results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arcstudy:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("arcstudy", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "dataset grid scale")
	trials := fs.Int("trials", 400, "fault-injection trials per configuration")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "parallel trial workers")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	prof := profiling.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		// A profile the user asked for but that failed to write should
		// fail the run, without masking the study's own error.
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	render := func(t *experiments.Table) error {
		if *csv {
			return t.WriteCSV(out)
		}
		return t.Write(out)
	}
	which := "all"
	if fs.NArg() > 0 {
		which = fs.Arg(0)
	}
	o := experiments.StudyOptions{Scale: *scale, MaxTrials: *trials, Seed: *seed, Workers: *workers}

	ran := false
	sel := func(name string) bool {
		if which == "all" || which == name {
			ran = true
			return true
		}
		return false
	}
	if sel("fig1") {
		r, err := experiments.Fig1(o)
		if err != nil {
			return err
		}
		if err := render(r.Table()); err != nil {
			return err
		}
	}
	if sel("fig2") {
		r, err := experiments.Fig2(o)
		if err != nil {
			return err
		}
		if err := render(r.Table()); err != nil {
			return err
		}
	}
	if sel("fig3") {
		r, err := experiments.Fig3(o)
		if err != nil {
			return err
		}
		if err := render(r.Table()); err != nil {
			return err
		}
	}
	if sel("fig4") {
		r, err := experiments.Fig4(o)
		if err != nil {
			return err
		}
		if err := render(r.Table()); err != nil {
			return err
		}
	}
	if sel("fig5") {
		r, err := experiments.Fig5(o)
		if err != nil {
			return err
		}
		if err := render(r.Table()); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig1..fig5 or all)", which)
	}
	return nil
}
