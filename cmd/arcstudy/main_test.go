package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFig1(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trials", "40", "fig1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Fatalf("missing table:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"fig99"}, &out); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag must fail")
	}
}

func TestRunCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trials", "30", "-csv", "fig1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "==") {
		t.Fatal("csv output must not contain table decorations")
	}
	if !strings.Contains(s, "percentile,bit position") {
		t.Fatalf("missing csv header:\n%s", s)
	}
}
