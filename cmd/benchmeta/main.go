// Command benchmeta prints host metadata as a single-line JSON object.
// verify.sh embeds it in BENCH_stream.json and BENCH_kernels.json so
// recorded throughput numbers are self-explanatory: a "host_cores": 1
// artifact reads very differently from an 8-core one, and kernel MB/s
// only compares across runs on the same GOARCH and Go version.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

type hostMeta struct {
	Cores     int    `json:"cores"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`
}

func main() {
	out, err := json.Marshal(hostMeta{
		Cores:     runtime.NumCPU(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmeta:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
