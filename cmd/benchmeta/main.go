// Command benchmeta turns `go test -bench -benchmem` output into the
// repository's recorded benchmark artifacts.
//
// With no arguments it prints host metadata as a single-line JSON
// object (the original mode, still used standalone). With a subcommand
// it reads benchmark output on stdin and writes one artifact to stdout:
//
//	go test -bench 'BenchmarkStream' -benchmem . | benchmeta stream  > BENCH_stream.json
//	go test -bench 'BenchmarkKernel' -benchmem . | benchmeta kernels > BENCH_kernels.json
//	go test -bench 'BenchmarkSeek' -benchmem .   | benchmeta seek    > BENCH_seek.json
//	arcload -addr $ADDR -corrupt 0.5      | benchmeta service > BENCH_service.json
//	benchmeta arcvet cold.json warm.json                      > BENCH_arcvet.json
//
// The service subcommand reads an arcload workload result instead of
// benchmark lines and gates on the fault-injection integrity contract
// plus smoke-scale throughput/latency floors (docs/SERVICE.md). The
// arcvet subcommand takes two `arcvet -timing` records as file
// arguments (a cold run that populates the fact cache, then a warm
// rerun) and gates the incremental cache: the warm run must replay
// every unit, reproduce the cold findings hash exactly, and beat the
// cold wall time by at least 5x.
//
// Both subcommands record ns/op, MB/s, B/op, and allocs/op per
// benchmark under a "host" header, and both gate: `stream` fails (exit
// 1) when any steady-state benchmark exceeds the allocation budget or
// the expected benchmarks are missing; `kernels` fails when a
// word-level kernel misses its speedup floor over its scalar
// reference. Host metadata is embedded so recorded numbers are
// self-explanatory: a "cores": 1 artifact reads very differently from
// an 8-core one, and kernel MB/s only compares across runs on the same
// GOARCH and Go version.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"slices"
	"strconv"
	"strings"

	"repro/internal/gf256"
	"repro/internal/service"
)

// hostMeta identifies the machine behind a recorded artifact. Cores is
// the hardware view (runtime.NumCPU) and GOMAXPROCS the scheduler's —
// they differ under cgroup CPU quotas, and parallel-speedup numbers
// only make sense against the latter. CPUFeatures and DispatchTier
// record which SIMD tiers the gf256 dispatcher saw and which one it
// picked, so kernel MB/s is attributable to a specific code path.
type hostMeta struct {
	Cores        int      `json:"cores"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	GOOS         string   `json:"goos"`
	GOARCH       string   `json:"goarch"`
	GoVersion    string   `json:"go_version"`
	CPUFeatures  []string `json:"cpu_features"`
	DispatchTier string   `json:"dispatch_tier"`
}

func host() hostMeta {
	return hostMeta{
		Cores:        runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GoVersion:    runtime.Version(),
		CPUFeatures:  gf256.Features(),
		DispatchTier: gf256.ActiveTier(),
	}
}

// benchResult is one parsed benchmark line. bytes_per_op and
// allocs_per_op are -1 when the run lacked -benchmem, so a genuine
// zero-allocation result is distinguishable from "not measured".
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// gomaxprocsSuffix strips the trailing -N GOMAXPROCS decoration that
// `go test` appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-[0-9]+$`)

// parseBench reads `go test -bench` output and returns the benchmark
// lines whose name starts with prefix. Lines that are not benchmark
// results (headers, PASS, ok) are skipped.
func parseBench(r io.Reader, prefix string) ([]benchResult, error) {
	sc := bufio.NewScanner(r)
	var out []benchResult
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], prefix) {
			continue
		}
		it, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := benchResult{
			Name:        gomaxprocsSuffix.ReplaceAllString(f[0], ""),
			Iterations:  it,
			BytesPerOp:  -1,
			AllocsPerOp: -1,
		}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "MB/s":
				b.MBPerS = v
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

const (
	// steadyAllocsMax is the steady-state allocation budget for the
	// chunk hot path: every BenchmarkStreamSteady variant must stay at
	// or under this many allocs/op. See docs/ALLOCATIONS.md.
	steadyAllocsMax = 2

	secdedSpeedupMin = 3.0
	gf256SpeedupMin  = 2.0

	// Vectorized codec kernels: the batched SZ quantizer and the
	// unrolled ZFP lifting transform, each against its retained scalar
	// reference.
	szQuantizeSpeedupMin = 2.0
	zfpLiftSpeedupMin    = 2.0

	// avx2VsSSSE3Min gates the 32-byte GF(256) kernel against the
	// 16-byte one on hosts whose dispatcher reports AVX2: twice the
	// lanes should buy at least 1.5x after memory effects.
	avx2VsSSSE3Min = 1.5
)

type streamArtifact struct {
	Host       hostMeta           `json:"host"`
	Note       string             `json:"note"`
	Benchmarks []benchResult      `json:"benchmarks"`
	Targets    map[string]float64 `json:"targets"`
}

func runStream(in io.Reader, out, errw io.Writer) error {
	benches, err := parseBench(in, "BenchmarkStream")
	if err != nil {
		return err
	}
	art := streamArtifact{
		Host:       host(),
		Note:       "pipeline>1 overlaps chunk encode/decode across cores; the >=1.5x speedup target applies on hosts with >=4 cores, single-core hosts show parity minus scheduling overhead. BenchmarkStreamSteady reuses one writer/reader across iterations and is gated on the steady-state allocation budget.",
		Benchmarks: benches,
		Targets:    map[string]float64{"SteadyStateAllocs_max": steadyAllocsMax},
	}
	if err := emit(out, art); err != nil {
		return err
	}

	var pipelined, steadyEnc, steadyDec int
	var over []string
	for _, b := range benches {
		switch {
		case strings.HasPrefix(b.Name, "BenchmarkStreamPipelined/"):
			pipelined++
		case strings.HasPrefix(b.Name, "BenchmarkStreamSteady/encode"):
			steadyEnc++
		case strings.HasPrefix(b.Name, "BenchmarkStreamSteady/decode"):
			steadyDec++
		}
		if strings.HasPrefix(b.Name, "BenchmarkStreamSteady/") {
			if b.AllocsPerOp < 0 {
				return fmt.Errorf("stream gate FAILED: %s has no allocs/op column (run the bench with -benchmem)", b.Name)
			}
			if b.AllocsPerOp > steadyAllocsMax {
				over = append(over, fmt.Sprintf("%s = %d allocs/op", b.Name, b.AllocsPerOp))
			}
		}
	}
	if pipelined == 0 || steadyEnc == 0 || steadyDec == 0 {
		return fmt.Errorf("stream gate FAILED: expected BenchmarkStreamPipelined plus BenchmarkStreamSteady encode and decode results, got %d/%d/%d", pipelined, steadyEnc, steadyDec)
	}
	if len(over) > 0 {
		return fmt.Errorf("stream allocation gate FAILED (budget %d allocs/op): %s", steadyAllocsMax, strings.Join(over, "; "))
	}
	_, err = fmt.Fprintf(errw, "stream gate OK: %d steady-state benchmarks within %d allocs/op\n", steadyEnc+steadyDec, steadyAllocsMax)
	return err
}

type kernelsArtifact struct {
	Host       hostMeta           `json:"host"`
	Note       string             `json:"note"`
	Benchmarks []benchResult      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
	Targets    map[string]float64 `json:"targets"`
}

func runKernels(in io.Reader, out, errw io.Writer) error {
	benches, err := parseBench(in, "BenchmarkKernel")
	if err != nil {
		return err
	}
	mbps := make(map[string]float64, len(benches))
	for _, b := range benches {
		mbps[b.Name] = b.MBPerS
	}
	speedups := make(map[string]float64)
	for _, b := range benches {
		base, ok := strings.CutSuffix(b.Name, "/word")
		if !ok {
			continue
		}
		scalar := mbps[base+"/scalar"]
		if scalar <= 0 {
			continue
		}
		speedups[strings.TrimPrefix(base, "BenchmarkKernel")] = round2(b.MBPerS / scalar)
	}
	// The per-tier MulSlice runs are not word/scalar pairs; derive the
	// AVX2-over-SSSE3 ratio from them when both tiers were measured.
	avx2 := mbps["BenchmarkKernelGF256MulSliceTier/avx2"]
	ssse3 := mbps["BenchmarkKernelGF256MulSliceTier/ssse3"]
	if avx2 > 0 && ssse3 > 0 {
		speedups["GF256MulSliceAVX2VsSSSE3"] = round2(avx2 / ssse3)
	}
	targets := map[string]float64{
		"SECDED64Encode_min": secdedSpeedupMin,
		"GF256MulSlice_min":  gf256SpeedupMin,
		"SZQuantize_min":     szQuantizeSpeedupMin,
		"ZFPLift_min":        zfpLiftSpeedupMin,
	}
	hostHasAVX2 := slices.Contains(gf256.Features(), "avx2")
	if hostHasAVX2 {
		targets["GF256MulSliceAVX2VsSSSE3_min"] = avx2VsSSSE3Min
	}
	art := kernelsArtifact{
		Host:       host(),
		Note:       "word/scalar pairs are measured in the same run; speedups are word MB/s over scalar MB/s. GF256MulSliceTier runs the same kernel under each dispatch tier; its avx2/ssse3 ratio is gated only on hosts that report AVX2.",
		Benchmarks: benches,
		Speedups:   speedups,
		Targets:    targets,
	}
	if err := emit(out, art); err != nil {
		return err
	}

	floors := []struct {
		name string
		min  float64
	}{
		{"SECDED64Encode", secdedSpeedupMin},
		{"GF256MulSlice", gf256SpeedupMin},
		{"SZQuantize", szQuantizeSpeedupMin},
		{"ZFPLift", zfpLiftSpeedupMin},
	}
	if hostHasAVX2 {
		floors = append(floors, struct {
			name string
			min  float64
		}{"GF256MulSliceAVX2VsSSSE3", avx2VsSSSE3Min})
	}
	var fails, oks []string
	for _, f := range floors {
		got, ok := speedups[f.name]
		switch {
		case !ok:
			fails = append(fails, fmt.Sprintf("%s missing (no benchmark pair in input)", f.name))
		case got < f.min:
			fails = append(fails, fmt.Sprintf("%s %.2fx (need %gx)", f.name, got, f.min))
		default:
			oks = append(oks, fmt.Sprintf("%s %.2fx", f.name, got))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("kernel gate FAILED: %s", strings.Join(fails, "; "))
	}
	_, err = fmt.Fprintf(errw, "kernel gate OK: %s\n", strings.Join(oks, ", "))
	return err
}

const (
	// Seek floors: a small range read out of a large v2 archive must
	// beat decoding the whole stream by a wide margin (that is the
	// point of the chunk index), and a cache-warm repeat must beat the
	// cold read (that is the point of the decoded-chunk cache). The
	// benchmark reads ~0.45% of a 64 MiB archive, so these are loose
	// floors over a ~100x expectation — see docs/CONTAINER.md.
	seekColdSpeedupMin = 20.0
	seekWarmSpeedupMin = 5.0
)

type seekArtifact struct {
	Host       hostMeta           `json:"host"`
	Note       string             `json:"note"`
	Benchmarks []benchResult      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
	Targets    map[string]float64 `json:"targets"`
}

// runSeek reads BenchmarkSeek output, records the seek artifact, and
// gates on the ranged-read speedups: cold range vs sequential full
// decode, and warm (cached) range vs cold.
func runSeek(in io.Reader, out, errw io.Writer) error {
	benches, err := parseBench(in, "BenchmarkSeek")
	if err != nil {
		return err
	}
	ns := make(map[string]float64, len(benches))
	for _, b := range benches {
		ns[strings.TrimPrefix(b.Name, "BenchmarkSeek/")] = b.NsPerOp
	}
	for _, want := range []string{"full_seq", "full_pipe", "range_cold", "range_warm"} {
		if ns[want] <= 0 {
			return fmt.Errorf("seek gate FAILED: missing BenchmarkSeek/%s (run `go test -bench BenchmarkSeek -benchmem .`)", want)
		}
	}
	speedups := map[string]float64{
		"RangeColdVsFullSeq": round2(ns["full_seq"] / ns["range_cold"]),
		"RangeWarmVsCold":    round2(ns["range_cold"] / ns["range_warm"]),
	}
	art := seekArtifact{
		Host:       host(),
		Note:       "one ~0.45% range out of a 64 MiB v2 archive: cold pays the index load and one chunk's ECC decode, warm is a decoded-chunk cache hit; full_seq/full_pipe decode the whole stream (the v1 answer). Ratios are ns/op quotients from the same run.",
		Benchmarks: benches,
		Speedups:   speedups,
		Targets: map[string]float64{
			"RangeColdVsFullSeq_min": seekColdSpeedupMin,
			"RangeWarmVsCold_min":    seekWarmSpeedupMin,
		},
	}
	if err := emit(out, art); err != nil {
		return err
	}
	cold, warm := speedups["RangeColdVsFullSeq"], speedups["RangeWarmVsCold"]
	if cold < seekColdSpeedupMin || warm < seekWarmSpeedupMin {
		return fmt.Errorf("seek gate FAILED: cold range %.1fx over full decode (need %gx), warm %.1fx over cold (need %gx)",
			cold, seekColdSpeedupMin, warm, seekWarmSpeedupMin)
	}
	_, err = fmt.Fprintf(errw, "seek gate OK: cold range %.1fx over full decode, warm %.1fx over cold\n", cold, warm)
	return err
}

// arcvetWarmSpeedupMin is the incremental-cache floor: a warm arcvet
// run over unchanged sources replays everything from the fact cache,
// so it must beat the cold run by a wide margin. Measured warm runs
// are 20-30x faster; 5x is a loose floor that still catches a cache
// that has silently stopped hitting. See docs/STATIC_ANALYSIS.md.
const arcvetWarmSpeedupMin = 5.0

// arcvetTiming mirrors cmd/arcvet's -timing record (schema
// arcvet-timing-v1). Kept as a local copy so benchmeta stays
// decoupled from the analyzer internals.
type arcvetTiming struct {
	Schema       string  `json:"schema"`
	WallMs       float64 `json:"wall_ms"`
	Packages     int     `json:"packages"`
	LiveUnits    int     `json:"live_units"`
	CachedUnits  int     `json:"cached_units"`
	Findings     int     `json:"findings"`
	FindingsHash string  `json:"findings_hash"`
}

type arcvetArtifact struct {
	Host     hostMeta           `json:"host"`
	Note     string             `json:"note"`
	Cold     arcvetTiming       `json:"cold"`
	Warm     arcvetTiming       `json:"warm"`
	Speedups map[string]float64 `json:"speedups"`
	Targets  map[string]float64 `json:"targets"`
}

// readTiming loads and sanity-checks one arcvet -timing record.
func readTiming(path string) (arcvetTiming, error) {
	var rec arcvetTiming
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != "arcvet-timing-v1" {
		return rec, fmt.Errorf("%s: schema %q, want arcvet-timing-v1", path, rec.Schema)
	}
	if rec.WallMs <= 0 {
		return rec, fmt.Errorf("%s: wall_ms %v is not positive", path, rec.WallMs)
	}
	return rec, nil
}

// runArcvet reads two arcvet -timing records (cold then warm, as file
// arguments rather than stdin — the two runs cannot share a pipe),
// records the cache artifact, and gates on the incremental-cache
// contract: the warm run re-analyzes nothing, reproduces the cold
// run's findings bit-for-bit, and lands the speedup floor.
func runArcvet(args []string, out, errw io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("arcvet gate FAILED: want two file arguments cold.json warm.json, got %d", len(args))
	}
	cold, err := readTiming(args[0])
	if err != nil {
		return fmt.Errorf("arcvet gate FAILED: %w", err)
	}
	warm, err := readTiming(args[1])
	if err != nil {
		return fmt.Errorf("arcvet gate FAILED: %w", err)
	}
	speedup := round2(cold.WallMs / warm.WallMs)
	art := arcvetArtifact{
		Host: host(),
		Note: "cold run populates the arcvet fact cache, warm run replays it over unchanged sources; the gate requires a full replay (live_units=0), identical findings hashes, and the wall-clock speedup floor",
		Cold: cold,
		Warm: warm,
		Speedups: map[string]float64{
			"WarmVsCold": speedup,
		},
		Targets: map[string]float64{
			"WarmVsCold_min": arcvetWarmSpeedupMin,
		},
	}
	if err := emit(out, art); err != nil {
		return err
	}

	var fails []string
	if cold.LiveUnits == 0 {
		fails = append(fails, "cold run analyzed nothing (was the cache dir already warm?)")
	}
	if warm.LiveUnits != 0 {
		fails = append(fails, fmt.Sprintf("warm run re-analyzed %d units, want a full replay", warm.LiveUnits))
	}
	if warm.FindingsHash != cold.FindingsHash {
		fails = append(fails, fmt.Sprintf("warm findings hash %s diverges from cold %s", warm.FindingsHash, cold.FindingsHash))
	}
	if speedup < arcvetWarmSpeedupMin {
		fails = append(fails, fmt.Sprintf("warm run only %.2fx faster than cold (need %gx)", speedup, arcvetWarmSpeedupMin))
	}
	if len(fails) > 0 {
		return fmt.Errorf("arcvet gate FAILED: %s", strings.Join(fails, "; "))
	}
	_, err = fmt.Fprintf(errw, "arcvet gate OK: warm replay of %d units %.1fx faster than cold (%.0fms -> %.0fms), findings identical\n",
		warm.CachedUnits, speedup, cold.WallMs, warm.WallMs)
	return err
}

const (
	// Smoke-scale service floors: deliberately conservative so they
	// hold on a loaded single-core CI runner while still catching a
	// service that has fallen off a cliff (or deadlocked into a
	// trickle). Real capacity numbers belong to dedicated runs, not
	// gates.
	serviceReqPerSMin = 20.0
	serviceP99MaxMs   = 1500.0
)

type serviceArtifact struct {
	Host     hostMeta               `json:"host"`
	Note     string                 `json:"note"`
	Workload service.WorkloadResult `json:"workload"`
	Targets  map[string]float64     `json:"targets"`
}

// runService reads an arcload WorkloadResult (JSON on stdin), records
// it as the service artifact, and gates on the integrity contract —
// every within-budget corruption repaired, every over-budget one
// reported, nothing silently wrong — plus smoke-scale service floors.
func runService(in io.Reader, out, errw io.Writer) error {
	var res service.WorkloadResult
	dec := json.NewDecoder(in)
	if err := dec.Decode(&res); err != nil {
		return fmt.Errorf("service gate FAILED: cannot parse arcload output: %w", err)
	}
	art := serviceArtifact{
		Host:     host(),
		Note:     "arcload smoke run with mid-flight fault injection against a live arcd; integrity gates are exact, throughput/latency floors are conservative smoke-scale bounds (see docs/SERVICE.md)",
		Workload: res,
		Targets: map[string]float64{
			"RequestsPerS_min": serviceReqPerSMin,
			"P99Ms_max":        serviceP99MaxMs,
		},
	}
	if err := emit(out, art); err != nil {
		return err
	}

	var fails []string
	failf := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}
	if res.Requests == 0 {
		failf("no requests completed")
	}
	if res.Errors != 0 {
		failf("%d request errors", res.Errors)
	}
	if res.SilentMismatches != 0 {
		failf("%d SILENT MISMATCHES (decodes returned wrong bytes as OK)", res.SilentMismatches)
	}
	if res.InjectedWithin == 0 {
		failf("no within-budget corruption was injected (run arcload with -corrupt > 0)")
	}
	if res.RepairedWithin != res.InjectedWithin || res.UnrepairedWithin != 0 {
		failf("repaired %d of %d within-budget corruptions (%d unrepaired)",
			res.RepairedWithin, res.InjectedWithin, res.UnrepairedWithin)
	}
	if res.ReportedOver != res.InjectedOver {
		failf("reported %d of %d over-budget corruptions as uncorrectable",
			res.ReportedOver, res.InjectedOver)
	}
	if res.CorrectedBits != res.InjectedWithinBits {
		failf("server corrected %d bits, workload injected %d",
			res.CorrectedBits, res.InjectedWithinBits)
	}
	if res.RequestsPerS < serviceReqPerSMin {
		failf("%.1f req/s under the %.0f req/s smoke floor", res.RequestsPerS, serviceReqPerSMin)
	}
	if res.Latency.P99Ms > serviceP99MaxMs {
		failf("p99 %.1fms over the %.0fms smoke ceiling", res.Latency.P99Ms, serviceP99MaxMs)
	}
	if len(fails) > 0 {
		return fmt.Errorf("service gate FAILED: %s", strings.Join(fails, "; "))
	}
	_, err := fmt.Fprintf(errw,
		"service gate OK: %d requests at %.0f req/s (p99 %.1fms), %d/%d within-budget repaired, %d/%d over-budget reported, 0 silent mismatches\n",
		res.Requests, res.RequestsPerS, res.Latency.P99Ms,
		res.RepairedWithin, res.InjectedWithin, res.ReportedOver, res.InjectedOver)
	return err
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func emit(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(b))
	return err
}

func run(args []string, in io.Reader, out, errw io.Writer) error {
	if len(args) == 0 {
		// Host-only mode stays single-line: callers embed it verbatim.
		b, err := json.Marshal(host())
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(out, string(b))
		return err
	}
	switch args[0] {
	case "stream":
		return runStream(in, out, errw)
	case "kernels":
		return runKernels(in, out, errw)
	case "service":
		return runService(in, out, errw)
	case "seek":
		return runSeek(in, out, errw)
	case "arcvet":
		return runArcvet(args[1:], out, errw)
	default:
		return fmt.Errorf("unknown subcommand %q (want stream, kernels, seek, arcvet, or service, or no argument for host metadata)", args[0])
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchmeta:", err)
		os.Exit(1)
	}
}
