package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/service"
)

// healthyWorkload is a passing arcload result: all injected damage
// accounted for, floors comfortably met.
func healthyWorkload() service.WorkloadResult {
	return service.WorkloadResult{
		Clients: 4, Requests: 200, Encodes: 100, Decodes: 80, Verifies: 10, Repairs: 10,
		InjectedWithin: 30, InjectedWithinBits: 55, RepairedWithin: 30, CorrectedBits: 55,
		InjectedOver: 12, ReportedOver: 12,
		ElapsedMs: 1000, RequestsPerS: 200,
		Latency: metrics.HistogramSnapshot{Count: 200, P50Ms: 2, P99Ms: 20, MaxMs: 30},
	}
}

func runServiceOn(t *testing.T, res service.WorkloadResult) (serviceArtifact, string, error) {
	t.Helper()
	in, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	gateErr := runService(bytes.NewReader(in), &out, &errw)
	var art serviceArtifact
	if out.Len() > 0 {
		if err := json.Unmarshal(out.Bytes(), &art); err != nil {
			t.Fatalf("artifact is not valid JSON: %v", err)
		}
	}
	return art, errw.String(), gateErr
}

func TestServiceArtifactAndGate(t *testing.T) {
	art, errw, err := runServiceOn(t, healthyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if art.Host.Cores < 1 || art.Workload.Requests != 200 {
		t.Fatalf("artifact: %+v", art)
	}
	if art.Targets["RequestsPerS_min"] != serviceReqPerSMin {
		t.Fatalf("targets: %+v", art.Targets)
	}
	if !strings.Contains(errw, "service gate OK") {
		t.Fatalf("stderr = %q", errw)
	}
}

func TestServiceGateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*service.WorkloadResult)
		want   string
	}{
		{"silent mismatch", func(r *service.WorkloadResult) { r.SilentMismatches = 1 }, "SILENT MISMATCH"},
		{"unrepaired", func(r *service.WorkloadResult) { r.RepairedWithin--; r.UnrepairedWithin = 1 }, "within-budget"},
		{"unreported over-budget", func(r *service.WorkloadResult) { r.ReportedOver-- }, "over-budget"},
		{"bit accounting drift", func(r *service.WorkloadResult) { r.CorrectedBits++ }, "bits"},
		{"request errors", func(r *service.WorkloadResult) { r.Errors = 3 }, "request errors"},
		{"no injection", func(r *service.WorkloadResult) {
			r.InjectedWithin, r.InjectedWithinBits, r.RepairedWithin, r.CorrectedBits = 0, 0, 0, 0
		}, "no within-budget corruption"},
		{"throughput floor", func(r *service.WorkloadResult) { r.RequestsPerS = 1 }, "req/s"},
		{"latency ceiling", func(r *service.WorkloadResult) { r.Latency.P99Ms = 99999 }, "p99"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := healthyWorkload()
			tc.mutate(&res)
			_, _, err := runServiceOn(t, res)
			if err == nil || !strings.Contains(err.Error(), "service gate FAILED") || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want gate failure mentioning %q", err, tc.want)
			}
		})
	}
}

func TestServiceGateRejectsGarbageInput(t *testing.T) {
	var out, errw bytes.Buffer
	if err := runService(strings.NewReader("not json"), &out, &errw); err == nil {
		t.Fatal("garbage input accepted")
	}
}
