package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"repro/internal/gf256"
)

const streamSample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamPipelined/encode/pipeline=1-4         	     100	   1714000 ns/op	 596.24 MB/s
BenchmarkStreamPipelined/encode/pipeline=4-4         	      90	   2000000 ns/op	 510.91 MB/s
BenchmarkStreamPipelined/decode/pipeline=1-4         	     500	    403000 ns/op	2535.29 MB/s
BenchmarkStreamPipelined/decode/pipeline=4-4         	     450	    437000 ns/op	2340.05 MB/s
BenchmarkStreamSteady/encode/pipeline=1-4            	     627	    544947 ns/op	 481.05 MB/s	      48 B/op	       1 allocs/op
BenchmarkStreamSteady/encode/pipeline=4-4            	     630	    580148 ns/op	 451.86 MB/s	      48 B/op	       1 allocs/op
BenchmarkStreamSteady/decode/pipeline=1-4            	    5623	     66874 ns/op	3919.99 MB/s	       0 B/op	       0 allocs/op
BenchmarkStreamSteady/decode/pipeline=4-4            	    4180	     99921 ns/op	2623.51 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	repro	1.760s
`

const kernelsSample = `BenchmarkKernelSECDED64Encode/scalar-1 	1000	 100 ns/op	 300.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelSECDED64Encode/word-1   	5000	  21 ns/op	1410.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelGF256MulSlice/scalar-1  	1000	 100 ns/op	 200.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelGF256MulSlice/word-1    	9000	  11 ns/op	1806.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelGF256MulSliceTier/avx2-1 	9000	  10 ns/op	3600.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelGF256MulSliceTier/ssse3-1	5000	  20 ns/op	1800.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelGF256MulSliceTier/word-1 	1000	 180 ns/op	 200.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelSZQuantize/word-1       	2000	  50 ns/op	 650.00 MB/s	0 B/op	3 allocs/op
BenchmarkKernelSZQuantize/scalar-1     	 600	 163 ns/op	 200.00 MB/s	0 B/op	3 allocs/op
BenchmarkKernelZFPLift/word-1          	3000	  40 ns/op	 840.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelZFPLift/scalar-1        	1000	 112 ns/op	 300.00 MB/s	0 B/op	0 allocs/op
BenchmarkKernelBitReader/word-1        	1000	 100 ns/op	 900.00 MB/s	0 B/op	0 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(streamSample), "BenchmarkStream")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("parsed %d benchmarks, want 8", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkStreamPipelined/encode/pipeline=1" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Iterations != 100 || first.NsPerOp != 1714000 || first.MBPerS != 596.24 {
		t.Errorf("bad fields: %+v", first)
	}
	if first.BytesPerOp != -1 || first.AllocsPerOp != -1 {
		t.Errorf("missing -benchmem columns should be -1, got %+v", first)
	}
	steady := got[4]
	if steady.BytesPerOp != 48 || steady.AllocsPerOp != 1 {
		t.Errorf("benchmem columns not parsed: %+v", steady)
	}
	if steady.MBPerS != 481.05 {
		t.Errorf("MB/s not parsed alongside benchmem columns: %+v", steady)
	}
}

func TestStreamArtifactAndGate(t *testing.T) {
	var out, errw bytes.Buffer
	if err := runStream(strings.NewReader(streamSample), &out, &errw); err != nil {
		t.Fatalf("gate should pass on sample: %v", err)
	}
	var art streamArtifact
	if err := json.Unmarshal(out.Bytes(), &art); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(art.Benchmarks) != 8 {
		t.Errorf("artifact has %d benchmarks, want 8", len(art.Benchmarks))
	}
	if art.Targets["SteadyStateAllocs_max"] != steadyAllocsMax {
		t.Errorf("targets = %v", art.Targets)
	}
	if art.Host.GoVersion == "" {
		t.Error("host metadata missing")
	}
	if !strings.Contains(errw.String(), "stream gate OK") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestStreamGateFailsOverBudget(t *testing.T) {
	over := strings.Replace(streamSample,
		"      48 B/op	       1 allocs/op",
		"    4096 B/op	      17 allocs/op", 1)
	var out, errw bytes.Buffer
	err := runStream(strings.NewReader(over), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "allocation gate FAILED") {
		t.Fatalf("err = %v, want allocation gate failure", err)
	}
	if !strings.Contains(err.Error(), "17 allocs/op") {
		t.Errorf("failure should name the offender: %v", err)
	}
}

func TestStreamGateFailsWhenSteadyMissing(t *testing.T) {
	var lines []string
	for _, l := range strings.Split(streamSample, "\n") {
		if !strings.Contains(l, "BenchmarkStreamSteady") {
			lines = append(lines, l)
		}
	}
	var out, errw bytes.Buffer
	err := runStream(strings.NewReader(strings.Join(lines, "\n")), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "expected BenchmarkStreamPipelined") {
		t.Fatalf("err = %v, want missing-benchmark failure", err)
	}
}

func TestStreamGateFailsWithoutBenchmem(t *testing.T) {
	stripped := streamSample
	for _, cols := range []string{
		"	      48 B/op	       1 allocs/op",
		"	       0 B/op	       0 allocs/op",
	} {
		stripped = strings.ReplaceAll(stripped, cols, "")
	}
	var out, errw bytes.Buffer
	err := runStream(strings.NewReader(stripped), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Fatalf("err = %v, want missing allocs/op column failure", err)
	}
}

func TestKernelsArtifactAndGate(t *testing.T) {
	var out, errw bytes.Buffer
	if err := runKernels(strings.NewReader(kernelsSample), &out, &errw); err != nil {
		t.Fatalf("gate should pass on sample: %v", err)
	}
	var art kernelsArtifact
	if err := json.Unmarshal(out.Bytes(), &art); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got := art.Speedups["SECDED64Encode"]; got != 4.7 {
		t.Errorf("SECDED64Encode speedup = %v, want 4.7", got)
	}
	if got := art.Speedups["GF256MulSlice"]; got != 9.03 {
		t.Errorf("GF256MulSlice speedup = %v, want 9.03", got)
	}
	if got := art.Speedups["SZQuantize"]; got != 3.25 {
		t.Errorf("SZQuantize speedup = %v, want 3.25", got)
	}
	if got := art.Speedups["ZFPLift"]; got != 2.8 {
		t.Errorf("ZFPLift speedup = %v, want 2.8", got)
	}
	if got := art.Speedups["GF256MulSliceAVX2VsSSSE3"]; got != 2.0 {
		t.Errorf("GF256MulSliceAVX2VsSSSE3 = %v, want 2.0", got)
	}
	if _, ok := art.Speedups["BitReader"]; ok {
		t.Error("word bench without a scalar pair must not produce a speedup")
	}
	if _, ok := art.Speedups["GF256MulSliceTier/avx2"]; ok {
		t.Error("tier benches are not word/scalar pairs and must not produce per-tier speedups")
	}
	if !strings.Contains(errw.String(), "kernel gate OK") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestKernelsGateFailsBelowFloor(t *testing.T) {
	slow := strings.Replace(kernelsSample, "1410.00 MB/s", " 310.00 MB/s", 1)
	var out, errw bytes.Buffer
	err := runKernels(strings.NewReader(slow), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "kernel gate FAILED") {
		t.Fatalf("err = %v, want kernel gate failure", err)
	}
}

func TestKernelsGateFailsWhenPairMissing(t *testing.T) {
	var lines []string
	for _, l := range strings.Split(kernelsSample, "\n") {
		if !strings.Contains(l, "GF256MulSlice/scalar") {
			lines = append(lines, l)
		}
	}
	var out, errw bytes.Buffer
	err := runKernels(strings.NewReader(strings.Join(lines, "\n")), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "GF256MulSlice missing") {
		t.Fatalf("err = %v, want missing-pair failure", err)
	}
}

const seekSample = `goos: linux
BenchmarkSeek/full_seq-4         	       7	 167034828 ns/op	 401.77 MB/s	   19496 B/op	      27 allocs/op
BenchmarkSeek/full_pipe-4        	       8	 142901100 ns/op	 469.58 MB/s	    3064 B/op	      23 allocs/op
BenchmarkSeek/range_cold-4       	     300	   3848765 ns/op	  77.95 MB/s	 1062472 B/op	      66 allocs/op
BenchmarkSeek/range_warm-4       	   30000	     39423 ns/op	7609.77 MB/s	      48 B/op	       1 allocs/op
PASS
`

func TestSeekArtifactAndGate(t *testing.T) {
	var out, errw bytes.Buffer
	if err := runSeek(strings.NewReader(seekSample), &out, &errw); err != nil {
		t.Fatalf("gate should pass on sample: %v", err)
	}
	var art seekArtifact
	if err := json.Unmarshal(out.Bytes(), &art); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got := art.Speedups["RangeColdVsFullSeq"]; got < 43 || got > 44 {
		t.Errorf("RangeColdVsFullSeq = %v, want ~43.4", got)
	}
	if got := art.Speedups["RangeWarmVsCold"]; got < 97 || got > 98 {
		t.Errorf("RangeWarmVsCold = %v, want ~97.6", got)
	}
	if art.Targets["RangeColdVsFullSeq_min"] != seekColdSpeedupMin {
		t.Errorf("targets = %v", art.Targets)
	}
	if !strings.Contains(errw.String(), "seek gate OK") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestSeekGateFailsBelowFloor(t *testing.T) {
	// A cold range read barely faster than the full decode: the index
	// has stopped paying for itself.
	slow := strings.Replace(seekSample, "	   3848765 ns/op", "	  90000000 ns/op", 1)
	var out, errw bytes.Buffer
	err := runSeek(strings.NewReader(slow), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "seek gate FAILED") {
		t.Fatalf("err = %v, want seek gate failure", err)
	}
}

func TestSeekGateFailsWhenBenchMissing(t *testing.T) {
	var lines []string
	for _, l := range strings.Split(seekSample, "\n") {
		if !strings.Contains(l, "range_warm") {
			lines = append(lines, l)
		}
	}
	var out, errw bytes.Buffer
	err := runSeek(strings.NewReader(strings.Join(lines, "\n")), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "missing BenchmarkSeek/range_warm") {
		t.Fatalf("err = %v, want missing-benchmark failure", err)
	}
}

// writeTimingFile drops an arcvet -timing record into a temp file and
// returns its path.
func writeTimingFile(t *testing.T, rec arcvetTiming) string {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "timing.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func arcvetSampleTimings() (cold, warm arcvetTiming) {
	cold = arcvetTiming{
		Schema: "arcvet-timing-v1", WallMs: 3400, Packages: 40,
		LiveUnits: 50, CachedUnits: 0, Findings: 0, FindingsHash: "abc123",
	}
	warm = arcvetTiming{
		Schema: "arcvet-timing-v1", WallMs: 140, Packages: 40,
		LiveUnits: 0, CachedUnits: 50, Findings: 0, FindingsHash: "abc123",
	}
	return cold, warm
}

func TestArcvetArtifactAndGate(t *testing.T) {
	cold, warm := arcvetSampleTimings()
	var out, errw bytes.Buffer
	err := runArcvet([]string{writeTimingFile(t, cold), writeTimingFile(t, warm)}, &out, &errw)
	if err != nil {
		t.Fatalf("gate should pass on sample: %v", err)
	}
	var art arcvetArtifact
	if err := json.Unmarshal(out.Bytes(), &art); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got := art.Speedups["WarmVsCold"]; got < 24 || got > 25 {
		t.Errorf("WarmVsCold = %v, want ~24.29", got)
	}
	if art.Targets["WarmVsCold_min"] != arcvetWarmSpeedupMin {
		t.Errorf("targets = %v", art.Targets)
	}
	if art.Cold.LiveUnits != 50 || art.Warm.CachedUnits != 50 {
		t.Errorf("timing records not embedded: %+v", art)
	}
	if !strings.Contains(errw.String(), "arcvet gate OK") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestArcvetGateFailures(t *testing.T) {
	cases := []struct {
		name string
		warp func(cold, warm *arcvetTiming)
		want string
	}{
		{"warm run analyzed units", func(_, w *arcvetTiming) { w.LiveUnits = 3 }, "re-analyzed 3 units"},
		{"findings diverge", func(_, w *arcvetTiming) { w.FindingsHash = "zzz" }, "diverges"},
		{"speedup under floor", func(_, w *arcvetTiming) { w.WallMs = 1700 }, "need 5x"},
		{"cold already warm", func(c, _ *arcvetTiming) { c.LiveUnits = 0 }, "analyzed nothing"},
		{"bad schema", func(c, _ *arcvetTiming) { c.Schema = "v0" }, "want arcvet-timing-v1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cold, warm := arcvetSampleTimings()
			tc.warp(&cold, &warm)
			var out, errw bytes.Buffer
			err := runArcvet([]string{writeTimingFile(t, cold), writeTimingFile(t, warm)}, &out, &errw)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestArcvetGateWantsTwoFiles(t *testing.T) {
	var out, errw bytes.Buffer
	err := runArcvet([]string{"only-one.json"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "two file arguments") {
		t.Fatalf("err = %v, want usage failure", err)
	}
}

func TestHostOnlyModeIsSingleLine(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	s := strings.TrimRight(out.String(), "\n")
	if strings.Contains(s, "\n") {
		t.Errorf("host-only output must be a single line, got %q", s)
	}
	var h hostMeta
	if err := json.Unmarshal([]byte(s), &h); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if h.Cores < 1 {
		t.Errorf("cores = %d", h.Cores)
	}
	if h.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", h.GOMAXPROCS)
	}
	if h.DispatchTier == "" {
		t.Error("dispatch_tier missing")
	}
	if !slices.Contains(append(h.CPUFeatures, "word"), h.DispatchTier) {
		t.Errorf("dispatch tier %q is not among features %v or the word fallback", h.DispatchTier, h.CPUFeatures)
	}
}

// TestKernelsGateAVX2Tier exercises the conditional AVX2-over-SSSE3
// floor. It only runs where the dispatcher reports AVX2, since the
// gate is deliberately skipped elsewhere.
func TestKernelsGateAVX2Tier(t *testing.T) {
	if !slices.Contains(gf256.Features(), "avx2") {
		t.Skip("host dispatcher does not report AVX2; tier gate inactive")
	}
	slow := strings.Replace(kernelsSample, "3600.00 MB/s", "1900.00 MB/s", 1)
	var out, errw bytes.Buffer
	err := runKernels(strings.NewReader(slow), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "GF256MulSliceAVX2VsSSSE3 1.06x") {
		t.Fatalf("err = %v, want AVX2-tier floor failure", err)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	err := run([]string{"bogus"}, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Fatalf("err = %v", err)
	}
}
