// Command arcscale reproduces the scalability evaluation (Section 6.1):
// Figures 8 and 9 (encode/decode throughput vs threads per ECC) and
// Figure 10 (decode throughput under correctable error load).
//
// Usage:
//
//	arcscale [-threads 1,2,4] [-mb 4] [-seed N] enc|dec|err|all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arcscale:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arcscale", flag.ContinueOnError)
	threads := fs.String("threads", "1,2,4", "comma-separated thread counts")
	mb := fs.Int("mb", 4, "payload size in MiB")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ts []int
	for _, s := range strings.Split(*threads, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad thread count %q", s)
		}
		ts = append(ts, v)
	}
	which := "all"
	if fs.NArg() > 0 {
		which = fs.Arg(0)
	}
	payload := *mb << 20

	switch which {
	case "enc", "dec", "err", "all":
	default:
		return fmt.Errorf("unknown sweep %q (want enc, dec, err, or all)", which)
	}
	if which == "enc" || which == "dec" || which == "all" {
		r, err := experiments.Fig89(ts, payload, *seed)
		if err != nil {
			return err
		}
		if err := r.Table().Write(out); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(out, "speedup (max threads vs 1): [encode, decode]"); err != nil {
			return err
		}
		for cfg, s := range r.Speedup() {
			if _, err := fmt.Fprintf(out, "  %-14s %.2fx  %.2fx\n", cfg, s[0], s[1]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(out); err != nil {
			return err
		}
	}
	if which == "err" || which == "all" {
		r, err := experiments.Fig10(ts, payload, []int{1, 100000}, *seed)
		if err != nil {
			return err
		}
		if err := r.Table().Write(out); err != nil {
			return err
		}
	}
	return nil
}
