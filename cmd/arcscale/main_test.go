package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEncSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "1", "-mb", "1", "enc"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figures 8-9", "parity8", "rs-m15", "speedup"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunErrSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "1", "-mb", "1", "err"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 10") {
		t.Fatal("missing figure 10 table")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-threads", "x"}, &out); err == nil {
		t.Fatal("bad threads must fail")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Fatal("unknown sweep must fail")
	}
}
