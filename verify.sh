#!/bin/sh
# verify.sh — the full local gate, mirroring .github/workflows/ci.yml.
# Usage: ./verify.sh [quick]
#   quick   skip the race detector and fuzz smoke (seconds, not minutes)
set -eu

cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== cross-compile arm64 (NEON dispatch path) =="
# The arm64 assembly and dispatch hooks only compile under GOARCH=arm64,
# so an amd64-only gate would let them rot.
GOARCH=arm64 go build ./...
GOARCH=arm64 go vet ./...

echo "== arcvet (full suite + waivercheck, cold cache) =="
# Built once so the cache benchmark below times the analysis, not the
# toolchain. -waivercheck keeps //arcvet:ignore directives honest: a
# waiver that suppresses nothing fails the sweep.
go build -o /tmp/arcvet_verify ./cmd/arcvet
arcvet_cache=$(mktemp -d)
/tmp/arcvet_verify -waivercheck -cache-dir "$arcvet_cache" \
    -timing /tmp/arcvet_cold.json ./...

echo "== arcvet warm replay (recorded to BENCH_arcvet.json) =="
# Same sources, warm cache: benchmeta gates that the rerun re-analyzed
# nothing, reproduced the cold findings hash, and beat the cold wall
# time by the speedup floor (nonzero exit fails verify under set -e).
/tmp/arcvet_verify -waivercheck -cache-dir "$arcvet_cache" \
    -timing /tmp/arcvet_warm.json ./...
go run ./cmd/benchmeta arcvet /tmp/arcvet_cold.json /tmp/arcvet_warm.json > BENCH_arcvet.json
rm -rf "$arcvet_cache"
echo "wrote BENCH_arcvet.json"

echo "== arcvet self-analysis =="
/tmp/arcvet_verify ./internal/analysis ./cmd/arcvet

echo "== arcvet concurrency contracts =="
/tmp/arcvet_verify -analyzers lockorder,chansafety,ctxflow ./...

echo "== govulncheck =="
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
else
    echo "govulncheck not installed; skipping (CI runs it)"
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

if [ "${1:-}" = "quick" ]; then
    echo "== go test (quick) =="
    go test ./...
    echo "verify: OK (quick)"
    exit 0
fi

echo "== go test -race =="
go test -race ./...

echo "== analyzer fixtures under race =="
go test -race ./internal/analysis ./cmd/arcvet

echo "== race-built arcvet over its own sources =="
# A race-built binary sweeping the analysis packages keeps the door
# open to a concurrent driver: any data race an analyzer grows is
# caught here before the scheduler ever overlaps units.
go run -race ./cmd/arcvet ./internal/analysis ./cmd/arcvet

echo "== service shutdown/disconnect leak regressions (race, 5 runs) =="
go test -race -run 'TestArcdShutdownDrains|TestArcdClientDisconnectMidStream' -count=5 ./internal/service

echo "== stream bench (recorded to BENCH_stream.json) =="
go test -run '^$' -bench 'BenchmarkStream' -benchtime=2s -benchmem -count=1 . | tee /tmp/arc_bench_stream.txt
# benchmeta parses the run, emits the artifact, and enforces the
# steady-state allocation budget (nonzero exit fails verify under set -e).
go run ./cmd/benchmeta stream < /tmp/arc_bench_stream.txt > BENCH_stream.json
echo "wrote BENCH_stream.json"

echo "== kernel bench (recorded to BENCH_kernels.json) =="
# The kernel pairs live in the root package plus the codec packages
# that grew vectorized paths (core voting, SZ quantize, ZFP lift).
go test -run '^$' -bench 'BenchmarkKernel' -benchtime=1s -benchmem -count=1 \
    . ./internal/core ./internal/sz ./internal/zfp | tee /tmp/arc_bench_kernels.txt
# benchmeta enforces the word/scalar speedup floors plus the
# AVX2-over-SSSE3 tier ratio on hosts that report AVX2.
go run ./cmd/benchmeta kernels < /tmp/arc_bench_kernels.txt > BENCH_kernels.json
echo "wrote BENCH_kernels.json"

echo "== seek bench (recorded to BENCH_seek.json) =="
go test -run '^$' -bench 'BenchmarkSeek' -benchtime=1s -benchmem -count=1 . | tee /tmp/arc_bench_seek.txt
# benchmeta enforces the ranged-read speedup floors: cold range vs
# sequential full decode, warm (cached) range vs cold.
go run ./cmd/benchmeta seek < /tmp/arc_bench_seek.txt > BENCH_seek.json
echo "wrote BENCH_seek.json"

echo "== service smoke (arcd + arcload with fault injection, recorded to BENCH_service.json) =="
# Boot a real daemon on an ephemeral port, hammer it with a corrupting
# workload, and gate the result: every within-budget corruption must be
# repaired, every over-budget one reported, zero silent mismatches, and
# the smoke-scale throughput/latency floors must hold (benchmeta's
# nonzero exit fails verify under set -e).
service_tmp=$(mktemp -d)
arcd_pid=""
cleanup_service() {
    if [ -n "$arcd_pid" ]; then
        kill "$arcd_pid" 2>/dev/null || true
    fi
    rm -rf "$service_tmp"
}
trap cleanup_service EXIT
go build -o "$service_tmp/arcd" ./cmd/arcd
go build -o "$service_tmp/arcload" ./cmd/arcload
go build -o "$service_tmp/arc" ./cmd/arc
# A root archive so the smoke also exercises READ_RANGE: plaintext
# ground truth plus its v2 encoding served from the daemon's -root.
mkdir "$service_tmp/root"
dd if=/dev/urandom of="$service_tmp/plain.bin" bs=65536 count=4 2>/dev/null
"$service_tmp/arc" encode -in "$service_tmp/plain.bin" \
    -out "$service_tmp/root/data.arc" -chunk-kb 32 -ecc secded
"$service_tmp/arcd" -addr 127.0.0.1:0 -addrfile "$service_tmp/arcd.addr" \
    -root "$service_tmp/root" -cache-mb 4 &
arcd_pid=$!
i=0
while [ ! -f "$service_tmp/arcd.addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "arcd never wrote its addrfile" >&2
        exit 1
    fi
    sleep 0.1
done
"$service_tmp/arcload" -addr "$(cat "$service_tmp/arcd.addr")" \
    -clients 4 -requests 40 -max-size 65536 -corrupt 0.5 -seed 1 \
    -range-archive data.arc -range-file "$service_tmp/plain.bin" -range-ratio 0.3 \
    > "$service_tmp/workload.json"
go run ./cmd/benchmeta service < "$service_tmp/workload.json" > BENCH_service.json
kill -TERM "$arcd_pid"
wait "$arcd_pid"
arcd_pid=""
echo "wrote BENCH_service.json"

echo "== fuzz smoke (10s per target) =="
for target in FuzzContainerDecode FuzzSZDecompress FuzzSZDecodeCorruptHeader FuzzZFPDecompress FuzzZFPDecodeCorruptHeader FuzzHuffmanTable FuzzStreamReader FuzzStreamReaderPipelined FuzzIndexDecode FuzzBitIORoundTrip; do
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s .
done

echo "== service frame fuzz smoke (10s) =="
go test -run '^$' -fuzz '^FuzzFrameDecode$' -fuzztime 10s ./internal/service

echo "== gf256 dispatch fuzz smoke (10s) =="
# Differential fuzz across every SIMD tier the host supports: each
# input must produce byte-identical results under avx2/ssse3/neon and
# the word fallback.
go test -run '^$' -fuzz '^FuzzGF256Dispatch$' -fuzztime 10s ./internal/gf256

echo "verify: OK"
