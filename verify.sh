#!/bin/sh
# verify.sh — the full local gate, mirroring .github/workflows/ci.yml.
# Usage: ./verify.sh [quick]
#   quick   skip the race detector and fuzz smoke (seconds, not minutes)
set -eu

cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== arcvet =="
go run ./cmd/arcvet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

if [ "${1:-}" = "quick" ]; then
    echo "== go test (quick) =="
    go test ./...
    echo "verify: OK (quick)"
    exit 0
fi

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke (10s per target) =="
for target in FuzzContainerDecode FuzzSZDecompress FuzzZFPDecompress FuzzHuffmanTable FuzzStreamReader; do
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s .
done

echo "verify: OK"
