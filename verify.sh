#!/bin/sh
# verify.sh — the full local gate, mirroring .github/workflows/ci.yml.
# Usage: ./verify.sh [quick]
#   quick   skip the race detector and fuzz smoke (seconds, not minutes)
set -eu

cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== arcvet =="
go run ./cmd/arcvet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

if [ "${1:-}" = "quick" ]; then
    echo "== go test (quick) =="
    go test ./...
    echo "verify: OK (quick)"
    exit 0
fi

echo "== go test -race =="
go test -race ./...

echo "== stream bench (recorded to BENCH_stream.json) =="
go test -run '^$' -bench 'BenchmarkStreamPipelined' -benchtime=2s -count=1 . | tee /tmp/arc_bench_stream.txt
awk -v cores="$(nproc)" '
    BEGIN {
        print "{"
        printf "  \"host_cores\": %d,\n", cores
        print "  \"note\": \"pipeline>1 overlaps chunk encode/decode across cores; the >=1.5x speedup target applies on hosts with >=4 cores, single-core hosts show parity minus scheduling overhead\","
        printf "  \"benchmarks\": ["
    }
    $1 ~ /^BenchmarkStreamPipelined\// {
        sub(/-[0-9]+$/, "", $1)
        printf "%s\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s}", (n++ ? "," : ""), $1, $2, $3, $5
    }
    END { print "\n  ]\n}" }
' /tmp/arc_bench_stream.txt > BENCH_stream.json
echo "wrote BENCH_stream.json"

echo "== fuzz smoke (10s per target) =="
for target in FuzzContainerDecode FuzzSZDecompress FuzzZFPDecompress FuzzHuffmanTable FuzzStreamReader FuzzStreamReaderPipelined; do
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s .
done

echo "verify: OK"
