#!/bin/sh
# verify.sh — the full local gate, mirroring .github/workflows/ci.yml.
# Usage: ./verify.sh [quick]
#   quick   skip the race detector and fuzz smoke (seconds, not minutes)
set -eu

cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== arcvet =="
go run ./cmd/arcvet ./...

echo "== arcvet self-analysis =="
go run ./cmd/arcvet ./internal/analysis ./cmd/arcvet

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

if [ "${1:-}" = "quick" ]; then
    echo "== go test (quick) =="
    go test ./...
    echo "verify: OK (quick)"
    exit 0
fi

echo "== go test -race =="
go test -race ./...

echo "== analyzer fixtures under race =="
go test -race ./internal/analysis ./cmd/arcvet

host_meta=$(go run ./cmd/benchmeta)

echo "== stream bench (recorded to BENCH_stream.json) =="
go test -run '^$' -bench 'BenchmarkStreamPipelined' -benchtime=2s -count=1 . | tee /tmp/arc_bench_stream.txt
awk -v host="$host_meta" '
    BEGIN {
        print "{"
        printf "  \"host\": %s,\n", host
        print "  \"note\": \"pipeline>1 overlaps chunk encode/decode across cores; the >=1.5x speedup target applies on hosts with >=4 cores, single-core hosts show parity minus scheduling overhead\","
        printf "  \"benchmarks\": ["
    }
    $1 ~ /^BenchmarkStreamPipelined\// {
        sub(/-[0-9]+$/, "", $1)
        printf "%s\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s}", (n++ ? "," : ""), $1, $2, $3, $5
    }
    END { print "\n  ]\n}" }
' /tmp/arc_bench_stream.txt > BENCH_stream.json
echo "wrote BENCH_stream.json"

echo "== kernel bench (recorded to BENCH_kernels.json) =="
go test -run '^$' -bench 'BenchmarkKernel' -benchtime=1s -count=1 . | tee /tmp/arc_bench_kernels.txt
awk -v host="$host_meta" '
    BEGIN {
        n = 0
        print "{"
        printf "  \"host\": %s,\n", host
        print "  \"note\": \"word/scalar pairs are measured in the same run; speedups below are word MB/s over scalar MB/s\","
        printf "  \"benchmarks\": ["
    }
    $1 ~ /^BenchmarkKernel/ {
        sub(/-[0-9]+$/, "", $1)
        mbps[$1] = $5
        order[n] = $1
        printf "%s\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s}", (n++ ? "," : ""), $1, $2, $3, $5
    }
    END {
        print "\n  ],"
        printf "  \"speedups\": {"
        ns = 0
        for (i = 0; i < n; i++) {
            name = order[i]
            if (name !~ /\/word$/) continue
            base = name; sub(/\/word$/, "", base)
            if (!((base "/scalar") in mbps)) continue
            key = base; sub(/^BenchmarkKernel/, "", key)
            printf "%s\n    \"%s\": %.2f", (ns++ ? "," : ""), key, mbps[name] / mbps[base "/scalar"]
        }
        print "\n  },"
        print "  \"targets\": {\"SECDED64Encode_min\": 3.0, \"GF256MulSlice_min\": 2.0}"
        print "}"
        secded = mbps["BenchmarkKernelSECDED64Encode/word"] / mbps["BenchmarkKernelSECDED64Encode/scalar"]
        mul = mbps["BenchmarkKernelGF256MulSlice/word"] / mbps["BenchmarkKernelGF256MulSlice/scalar"]
        if (secded < 3.0 || mul < 2.0) {
            printf "kernel bench gate FAILED: SECDED64Encode %.2fx (need 3x), GF256MulSlice %.2fx (need 2x)\n", secded, mul > "/dev/stderr"
            exit 1
        }
        printf "kernel bench gate OK: SECDED64Encode %.2fx, GF256MulSlice %.2fx\n", secded, mul > "/dev/stderr"
    }
' /tmp/arc_bench_kernels.txt > BENCH_kernels.json
echo "wrote BENCH_kernels.json"

echo "== fuzz smoke (10s per target) =="
for target in FuzzContainerDecode FuzzSZDecompress FuzzSZDecodeCorruptHeader FuzzZFPDecompress FuzzZFPDecodeCorruptHeader FuzzHuffmanTable FuzzStreamReader FuzzStreamReaderPipelined FuzzBitIORoundTrip; do
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s .
done

echo "verify: OK"
