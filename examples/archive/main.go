// Archive: a realistic multi-variable checkpoint. Simulations dump
// several named fields per step (pressure, temperature, cloud cover,
// ...), each with its own precision requirement. The checkpoint
// package compresses each field with its own configuration and wraps
// everything — data and metadata — in one ARC-protected stream.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	arc "repro"
	"repro/checkpoint"
	"repro/internal/datasets"
	"repro/internal/metrics"
)

func main() {
	a, err := arc.Init(arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// Three variables with different shapes, scales, and bounds.
	cldlow := datasets.CESM(64, 128, 1)
	pressure := datasets.Isabel(6, 24, 24, 2)
	temperature := datasets.NYX(12, 12, 12, 3)

	aw := checkpoint.NewArchiveWriter()
	must(aw.Add("cldlow", cldlow.Data, cldlow.Dims,
		checkpoint.Options{Compressor: "SZ-ABS", Bound: 0.01}))
	must(aw.Add("pressure", pressure.Data, pressure.Dims,
		checkpoint.Options{Compressor: "ZFP-ACC", Bound: 0.5}))
	must(aw.Add("temperature", temperature.Data, temperature.Dims,
		checkpoint.Options{Compressor: "SZ-PWREL", Bound: 0.001}))

	var file bytes.Buffer
	must(aw.WriteTo(&file, a, arc.AnyMem, arc.AnyBW, arc.WithErrorsPerMB(1), 0))
	raw := cldlow.SizeBytes() + pressure.SizeBytes() + temperature.SizeBytes()
	fmt.Printf("archived %d fields: %d KiB raw -> %d KiB protected (%.1fx)\n",
		3, raw>>10, file.Len()>>10, float64(raw)/float64(file.Len()))

	// Soft errors accumulate while the checkpoint is at rest.
	buf := file.Bytes()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5; i++ {
		bit := rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 0x80 >> (bit % 8)
	}

	ar, err := checkpoint.LoadArchive(bytes.NewReader(buf), arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restart: %d chunks read, %d block(s) repaired\n",
		ar.Repairs.Chunks, ar.Repairs.CorrectedBlocks)
	for _, want := range []struct {
		name  string
		orig  []float64
		kind  metrics.BoundKind
		bound float64
	}{
		{"cldlow", cldlow.Data, metrics.BoundAbs, 0.01},
		{"pressure", pressure.Data, metrics.BoundAbs, 0.5},
		{"temperature", temperature.Data, metrics.BoundRel, 0.001},
	} {
		f := ar.Get(want.name)
		if f == nil {
			log.Fatalf("field %s missing", want.name)
		}
		if i := metrics.VerifyBound(want.orig, f.Data, want.kind, want.bound); i != -1 {
			log.Fatalf("field %s violates its bound at %d", want.name, i)
		}
		fmt.Printf("  %-12s %v via %-8s within bound %g\n",
			f.Name, f.Dims, f.Compressor, f.Bound)
	}
	fmt.Println("every field restored within its own error bound")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
