// Quickstart: the paper's Algorithm 1 — integrating ARC takes four
// lines: Init, Encode, Decode, Close. Everything else in this file is
// staging (building some data and flipping a bit to prove the repair).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	arc "repro"
)

func main() {
	// Some bytes worth protecting — in real use, the output of a lossy
	// compressor.
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(data)

	// Line 1: arc_init(ARC_ANY_THREADS).
	a, err := arc.Init(arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	// Line 4: arc_close() — deferred.
	defer a.Close()

	// Line 2: arc_encode(data, ARC_ANY_MEM, ARC_ANY_BW, ARC_ANY_ECC).
	enc, err := a.Encode(data, arc.AnyMem, arc.AnyBW, arc.AnyECC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected %d bytes with %s (overhead %.2f%%)\n",
		len(data), enc.Choice.Config, 100*enc.ActualOverhead)

	// A soft error strikes while the data sits in memory or storage.
	enc.Encoded[100000] ^= 0x20

	// Line 3: arc_decode(encoded).
	dec, err := a.Decode(enc.Encoded)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(dec.Data, data) {
		log.Fatal("data mismatch after repair")
	}
	fmt.Printf("soft error repaired: %d block(s) corrected, data intact\n",
		dec.Report.CorrectedBlocks)
}
