// Stream: protecting data that doesn't fit in memory. The streaming
// API chunks an arbitrarily long byte stream into independently
// protected containers, so a corrupted region never takes down more
// than one chunk, and decoding repairs on the fly while data flows
// through ordinary io.Reader/io.Writer plumbing.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"

	arc "repro"
)

func main() {
	a, err := arc.Init(arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// A 2 MiB "checkpoint stream" produced incrementally.
	rng := rand.New(rand.NewSource(5))
	var plain bytes.Buffer
	var protected bytes.Buffer

	w, err := a.NewWriter(&protected, 0.2, arc.AnyBW, arc.AnyECC, 256<<10)
	if err != nil {
		log.Fatal(err)
	}
	piece := make([]byte, 8192)
	for i := 0; i < 256; i++ {
		rng.Read(piece)
		plain.Write(piece)
		if _, err := w.Write(piece); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d KiB through %s into %d KiB\n",
		plain.Len()>>10, w.Choice().Config, protected.Len()>>10)

	// Cheap metadata pass: no payload decoding.
	infos, err := arc.InspectStream(bytes.NewReader(protected.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inspect: %d chunks, first = %s (%d -> %d bytes)\n",
		len(infos), infos[0].Config, infos[0].OrigLen, infos[0].EncLen)

	// Soft errors strike several chunks while the stream is at rest.
	buf := protected.Bytes()
	for i := 0; i < 10; i++ {
		bit := rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 0x80 >> (bit % 8)
	}

	// Decode-and-repair while streaming back out.
	r := arc.NewReader(bytes.NewReader(buf), arc.AnyThreads)
	var recovered bytes.Buffer
	if _, err := io.Copy(&recovered, r); err != nil {
		log.Fatal(err)
	}
	rep := r.Report()
	fmt.Printf("decoded %d chunks: repaired %d block(s) along the way\n",
		rep.Chunks, rep.CorrectedBlocks)
	if bytes.Equal(recovered.Bytes(), plain.Bytes()) {
		fmt.Println("stream recovered bit-exact")
	} else {
		log.Fatal("stream mismatch")
	}
}
