// Custom: registering a user-defined ECC family — the API the paper
// lists as future work. This example adds "dup", a duplication code
// with per-copy checksums (2x overhead, burst-tolerant up to half the
// stream), and shows ARC training it, selecting it under constraints,
// and decoding it transparently via the container's method id.
package main

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"log"
	"math/rand"

	arc "repro"
	"repro/internal/ecc"
)

// dupCode stores the payload twice, each copy ending in a CRC-32 so
// decode knows which copy to trust.
type dupCode struct{}

func (dupCode) Name() string          { return "dup1" }
func (dupCode) Overhead() float64     { return 1.0 + 8.0/(64<<10) }
func (dupCode) EncodedSize(n int) int { return 2 * (n + 4) }
func (dupCode) Caps() ecc.Capability {
	return ecc.DetectSparse | ecc.CorrectSparse | ecc.CorrectBurst
}

func (c dupCode) Encode(data []byte) []byte {
	out := make([]byte, 0, c.EncodedSize(len(data)))
	for copyN := 0; copyN < 2; copyN++ {
		out = append(out, data...)
		var crc [4]byte
		sum := crc32.ChecksumIEEE(data)
		crc[0], crc[1], crc[2], crc[3] = byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
		out = append(out, crc[:]...)
	}
	return out
}

func (c dupCode) Decode(enc []byte, origLen int) ([]byte, ecc.Report, error) {
	var rep ecc.Report
	if len(enc) < c.EncodedSize(origLen) {
		return nil, rep, ecc.ErrTruncated
	}
	half := origLen + 4
	for copyN := 0; copyN < 2; copyN++ {
		payload := enc[copyN*half : copyN*half+origLen]
		stored := enc[copyN*half+origLen : copyN*half+origLen+4]
		sum := crc32.ChecksumIEEE(payload)
		if stored[0] == byte(sum) && stored[1] == byte(sum>>8) &&
			stored[2] == byte(sum>>16) && stored[3] == byte(sum>>24) {
			if copyN > 0 {
				rep.DetectedBlocks, rep.CorrectedBlocks = 1, 1
			}
			out := make([]byte, origLen)
			copy(out, payload)
			return out, rep, nil
		}
	}
	rep.DetectedBlocks = 2
	return enc[:origLen], rep, ecc.ErrUncorrectable
}

func main() {
	err := arc.RegisterCustomMethod(arc.CustomMethod{
		ID:       arc.CustomMethodBase,
		Name:     "dup",
		Params:   []int{1},
		Overhead: func(int) float64 { return 1.0 },
		Caps:     ecc.DetectSparse | ecc.CorrectSparse | ecc.CorrectBurst,
		Build: func(param, workers, devSize int) (ecc.Code, error) {
			return dupCode{}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	a, err := arc.Init(arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	fmt.Println("registered custom family 'dup'; engine trained it like any built-in")

	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)

	// Pin ARC to the custom family via the resiliency constraint.
	enc, err := a.Encode(data, arc.AnyMem, arc.AnyBW, arc.WithMethods(arc.CustomMethodBase))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded with %s (overhead %.0f%%)\n", enc.Choice.Config, 100*enc.ActualOverhead)

	// Wreck the entire first copy; decode falls over to the second.
	for i := 0; i < len(data)/2; i++ {
		enc.Encoded[arc.ContainerOverheadBytes+i] ^= 0xFF
	}
	dec, err := a.Decode(enc.Encoded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("half the stream destroyed; recovered intact = %v (via copy #2)\n",
		bytes.Equal(dec.Data, data))
}
