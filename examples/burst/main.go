// Burst: why Reed-Solomon exists in ARC's lineup. SEC-DED corrects one
// bit per codeword, so a burst of flips inside one memory region
// defeats it; Reed-Solomon repairs whole devices, so the same burst is
// one erasure. This example drives both through the ARC Engine's
// Table-1 functions and compares.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	arc "repro"
)

func main() {
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(21)).Read(data)

	// Protect the same payload two ways.
	secded := arc.SecdedEncode(data, 64, arc.AnyThreads)
	rs, err := arc.ReedSolomonEncode(data, 32, 4, 2048, arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("payload %d KiB: secded64 -> %d KiB, rs(32+4) -> %d KiB\n",
		len(data)>>10, len(secded)>>10, len(rs)>>10)

	// A 1 KiB burst: hundreds of consecutive corrupted bits, as a
	// failing DRAM device produces.
	burst := func(buf []byte, off, n int, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			buf[off+i] ^= byte(1 + rng.Intn(255))
		}
	}

	sMut := append([]byte(nil), secded...)
	burst(sMut, 8192, 1024, 1)
	_, sRep, sErr := arc.SecdedDecode(sMut, len(data), 64, arc.AnyThreads)
	fmt.Printf("secded64 under a 1 KiB burst: detected %d block(s), err = %v\n",
		sRep.DetectedBlocks, sErr)

	rMut := append([]byte(nil), rs...)
	burst(rMut, 8192, 1024, 1)
	rOut, rRep, rErr := arc.ReedSolomonDecode(rMut, len(data), 32, 4, 2048, arc.AnyThreads)
	ok := rErr == nil && bytes.Equal(rOut, data)
	fmt.Printf("rs(32+4)  under a 1 KiB burst: rebuilt %d device(s), recovered = %v\n",
		rRep.CorrectedBlocks, ok)

	// The automated path reaches the same conclusion: ask ARC for
	// burst protection and it picks Reed-Solomon by itself.
	a, err := arc.Init(arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	enc, err := a.Encode(data, 0.25, arc.AnyBW, arc.WithCaps(arc.CorBurst))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ARC with ARC_COR_BURST chose: %s\n", enc.Choice.Config)
	mut := append([]byte(nil), enc.Encoded...)
	burst(mut, 4096, 1024, 2)
	dec, err := a.Decode(mut)
	if err != nil {
		log.Fatal("ARC failed on the burst: ", err)
	}
	fmt.Printf("ARC repaired the burst: %d device(s) rebuilt, data intact = %v\n",
		dec.Report.CorrectedBlocks, bytes.Equal(dec.Data, data))
}
