// Checkpoint: the paper's Section 6.4 scenario. An application
// checkpoints a 3D pressure field with lossy compression; checkpoints
// sit in memory/storage for days, accumulating soft errors at the
// host system's rate. The failure model of the target machine (Cielo
// or Hopper, from Sridharan et al.) chooses the ARC constraints.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	arc "repro"
	"repro/internal/datasets"
	"repro/internal/failmodel"
	"repro/internal/sz"
)

func main() {
	for _, system := range []failmodel.System{failmodel.Cielo(), failmodel.Hopper()} {
		rec := failmodel.Recommend(system)
		fmt.Printf("=== %s (%d nodes, %d ft) ===\n", system.Name, system.Nodes, system.AltitudeFeet)
		fmt.Printf("MTBF: a soft-error failure every %.2f days\n", system.MTBFDays())
		fmt.Printf("fault mix: %.1f%% single-bit, %.1f%% multi-bit\n",
			100*system.SingleBitFraction, 100*system.MultiBitFraction())
		fmt.Printf("advice: %s\n", rec.Rationale)
		runCheckpointLoop(system, rec)
		fmt.Println()
	}
}

func runCheckpointLoop(system failmodel.System, rec failmodel.Recommendation) {
	field := datasets.Isabel(8, 32, 32, 11)
	compressed, err := sz.Compress(field.Data, field.Dims, sz.Options{Mode: sz.ModeABS, ErrorBound: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	a, err := arc.Init(arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// Budget exactly what the recommended configuration costs, so the
	// optimizer lands on it (Cielo -> Reed-Solomon, Hopper -> SEC-DED).
	enc, err := a.Encode(compressed, rec.Config.Overhead(), arc.AnyBW, rec.Resiliency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes compressed, protected with %s (+%.1f%%)\n",
		len(compressed), enc.Choice.Config, 100*enc.ActualOverhead)

	// Simulate epochs of residency; each epoch suffers faults drawn
	// from the system's single-bit/burst mix.
	rng := rand.New(rand.NewSource(13))
	recovered, detected, silent := 0, 0, 0
	const epochs = 20
	for epoch := 0; epoch < epochs; epoch++ {
		mut := append([]byte(nil), enc.Encoded...)
		if rng.Float64() < system.SingleBitFraction {
			bit := rng.Intn(len(mut) * 8)
			mut[bit/8] ^= 0x80 >> (bit % 8)
		} else {
			// Burst fault within one "DRAM device": adjacent bytes.
			off := rng.Intn(len(mut) - 64)
			for i := 0; i < 16; i++ {
				mut[off+i] ^= byte(rng.Intn(256))
			}
		}
		dec, err := a.Decode(mut)
		switch {
		case err == nil && bytes.Equal(dec.Data, compressed):
			recovered++
		case err != nil:
			detected++ // fall back to an older checkpoint — no SDC
		default:
			silent++
		}
	}
	fmt.Printf("restart drill: %d/%d recovered, %d detected (restart from older checkpoint), %d silent\n",
		recovered, epochs, detected, silent)
	if system.Name == "Hopper" && detected > 0 {
		fmt.Println("note: SEC-DED detects (but cannot fix) the rare Hopper burst — the trade the paper's Section 6.4 discusses")
	}
}
