// Climate: the paper's motivating pipeline end to end. A CESM-like 2D
// cloud field is lossy-compressed with SZ-ABS (eps = 0.1), which makes
// it fragile: a single bit flip corrupts ~10% of values on average.
// Protecting the compressed bytes with ARC removes that fragility for
// a ~12.5% storage overhead — far below keeping a second copy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	arc "repro"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/sz"
)

func main() {
	field := datasets.CESM(128, 256, 7)
	fmt.Printf("dataset: %s\n", field)

	const bound = 0.1
	compressed, err := sz.Compress(field.Data, field.Dims, sz.Options{Mode: sz.ModeABS, ErrorBound: bound})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SZ-ABS(eps=%g): %d -> %d bytes (CR %.1fx)\n",
		bound, field.SizeBytes(), len(compressed), float64(field.SizeBytes())/float64(len(compressed)))

	// --- Without ARC: one flip, and the science is gone. ---
	rng := rand.New(rand.NewSource(99))
	mut := append([]byte(nil), compressed...)
	bit := rng.Intn(len(mut) * 8)
	mut[bit/8] ^= 0x80 >> (bit % 8)
	if dec, dims, err := sz.Decompress(mut); err != nil {
		fmt.Printf("without ARC: flip at bit %d -> decompression exception (%v)\n", bit, err)
	} else {
		_ = dims
		s := metrics.Evaluate(field.Data, dec, bound)
		fmt.Printf("without ARC: flip at bit %d -> %.1f%% of elements violate the bound (SDC!)\n",
			bit, s.PercentIncorrect)
	}

	// --- With ARC: same flip, repaired transparently. ---
	a, err := arc.Init(arc.AnyThreads)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	enc, err := a.Encode(compressed, arc.AnyMem, arc.AnyBW, arc.WithErrorsPerMB(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with ARC: %s, storage overhead %.2f%%\n", enc.Choice.Config, 100*enc.ActualOverhead)

	enc.Encoded[arcOffset(bit, len(enc.Encoded))] ^= 0x10 // another strike
	dec, err := a.Decode(enc.Encoded)
	if err != nil {
		log.Fatal("ARC failed to repair: ", err)
	}
	restored, _, err := sz.Decompress(dec.Data)
	if err != nil {
		log.Fatal(err)
	}
	s := metrics.Evaluate(field.Data, restored, bound)
	fmt.Printf("with ARC: error repaired (%d block(s)); %.2f%% bound violations; PSNR %.1f dB\n",
		dec.Report.CorrectedBlocks, s.PercentIncorrect, s.PSNR)
}

// arcOffset maps the earlier flip position into the ARC stream bounds.
func arcOffset(bit, encLen int) int {
	off := bit / 8
	if off >= encLen {
		off = encLen / 2
	}
	return off
}
