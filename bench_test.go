package arc

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, as indexed in DESIGN.md. Each benchmark regenerates the
// corresponding rows/series via internal/experiments and reports the
// headline quantity with b.ReportMetric, so `go test -bench=.` emits a
// machine-readable reproduction of the whole evaluation.
//
// Absolute MB/s values reflect this host, not the paper's Xeon nodes;
// the shape claims (who wins, step functions, collapse under error
// load) are asserted by the experiments package's own tests.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ecc/reedsolomon"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/pressio"
	"repro/internal/sz"
)

// benchStudy keeps fault-injection benchmarks snappy.
var benchStudy = experiments.StudyOptions{Scale: 1, MaxTrials: 120, Seed: 1, Workers: 1}

// BenchmarkFig1SingleFlipImpact regenerates Figure 1: the per-location
// severity of single flips in SZ-compressed Isabel-like data.
func BenchmarkFig1SingleFlipImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchStudy)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Trials) > 0 {
			b.ReportMetric(r.Trials[len(r.Trials)-1].PercentIncorrect, "worst-%incorrect")
		}
	}
}

// BenchmarkFig2ReturnStatuses regenerates Figure 2: the return-status
// distribution over all 15 (compressor, dataset) cells.
func BenchmarkFig2ReturnStatuses(b *testing.B) {
	opts := benchStudy
	opts.MaxTrials = 60
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AverageCompleted(), "%completed")
	}
}

// BenchmarkFig3ErrorBoundViolations regenerates Figure 3: mean percent
// of incorrect elements per mode on the CESM-like field.
func BenchmarkFig3ErrorBoundViolations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchStudy)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Series {
			if s.Compressor == "SZ-ABS" {
				b.ReportMetric(s.MeanPercent, "szabs-mean-%incorrect")
			}
			if s.Compressor == "ZFP-Rate" {
				b.ReportMetric(s.MeanElements, "zfprate-mean-elems")
			}
		}
	}
}

// BenchmarkFig4LossLevels regenerates Figure 4: violations at target
// compression ratios 50x/25x/13x/7x.
func BenchmarkFig4LossLevels(b *testing.B) {
	opts := benchStudy
	opts.MaxTrials = 60
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.Compressor == "SZ-ABS" && c.TargetCR == 7 {
				b.ReportMetric(c.MeanPercent, "szabs-7x-%incorrect")
			}
		}
	}
}

// BenchmarkFig5IntegrityMetrics regenerates Figure 5: bandwidth /
// max-diff / PSNR aggregates over Completed trials.
func BenchmarkFig5IntegrityMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchStudy)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Compressor == "SZ-ABS" {
				b.ReportMetric(row.MeanPSNR, "szabs-mean-psnr-dB")
			}
		}
	}
}

// BenchmarkFig6TrainingCost regenerates Figure 6: training wall time
// and configuration count vs thread cap.
func BenchmarkFig6TrainingCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6([]int{1, 2, 4}, 64<<10)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(float64(last.Configs), "configs-trained")
		b.ReportMetric(last.TrainSeconds, "train-s")
	}
}

// BenchmarkFig8EncodeScaling regenerates Figure 8: per-ECC encode
// throughput across a thread sweep.
func BenchmarkFig8EncodeScaling(b *testing.B) {
	for _, cfg := range experiments.ScalingConfigs() {
		for _, th := range []int{1, 2, 4} {
			cfg, th := cfg, th
			b.Run(fmt.Sprintf("%s/threads=%d", cfg, th), func(b *testing.B) {
				code, err := cfg.Build(th)
				if err != nil {
					b.Fatal(err)
				}
				data := make([]byte, 1<<20)
				rand.New(rand.NewSource(1)).Read(data)
				b.SetBytes(int64(len(data)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = code.Encode(data)
				}
			})
		}
	}
}

// BenchmarkFig9DecodeScaling regenerates Figure 9: per-ECC decode
// throughput on clean data.
func BenchmarkFig9DecodeScaling(b *testing.B) {
	for _, cfg := range experiments.ScalingConfigs() {
		for _, th := range []int{1, 2, 4} {
			cfg, th := cfg, th
			b.Run(fmt.Sprintf("%s/threads=%d", cfg, th), func(b *testing.B) {
				code, err := cfg.Build(th)
				if err != nil {
					b.Fatal(err)
				}
				data := make([]byte, 1<<20)
				rand.New(rand.NewSource(2)).Read(data)
				enc := code.Encode(data)
				b.SetBytes(int64(len(data)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := code.Decode(enc, len(data)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10ErrorLoad regenerates Figure 10: decode throughput with
// 1 and 100,000 correctable errors present.
func BenchmarkFig10ErrorLoad(b *testing.B) {
	for _, errs := range []int{1, 100000} {
		errs := errs
		b.Run(fmt.Sprintf("errors=%d", errs), func(b *testing.B) {
			r, err := experiments.Fig10([]int{1}, 1<<20, []int{errs}, 3)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range r.Rows {
				if row.Config == "rs-k241-m15" {
					b.ReportMetric(row.DecMBs, "rs-dec-MB/s")
				}
			}
			for i := 1; i < b.N; i++ { // the experiment above is the work
				_, _ = experiments.Fig10([]int{1}, 1<<20, []int{errs}, 3)
			}
		})
	}
}

// BenchmarkFig11AnyECC regenerates Figure 11: constraint tracking with
// ARC_ANY_ECC.
func BenchmarkFig11AnyECC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(2, 1, 4, []float64{0.1, 0.2, 0.5, 0.9}, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range r.MemRows {
			if gap := row.TargetOverhead - row.ChoiceOverhead; gap > worst {
				worst = gap
			}
		}
		b.ReportMetric(worst, "worst-budget-slack")
	}
}

// BenchmarkFig12SingleECC regenerates Figure 12: single-ECC target vs
// true overhead step functions.
func BenchmarkFig12SingleECC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(1, 1, 5, []float64{0.05, 0.2, 0.63, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.MemRows)), "points")
	}
}

// BenchmarkSec63Resiliency regenerates Section 6.3: the fault study
// rerun under ARC protection; the metric is the corrected fraction
// (must be 1.0).
func BenchmarkSec63Resiliency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec63(1, 1, 40, 6)
		if err != nil {
			b.Fatal(err)
		}
		tot, cor := 0, 0
		for _, r := range rows {
			tot += r.Trials
			cor += r.Corrected
		}
		b.ReportMetric(float64(cor)/float64(tot), "corrected-fraction")
	}
}

// BenchmarkTable1EngineCalls measures the Table-1 engine surface: one
// call of each encode function on a 1 MiB payload.
func BenchmarkTable1EngineCalls(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(data)
	b.Run("parity", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_ = ParityEncode(data, 8, 1)
		}
	})
	b.Run("hamming", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_ = HammingEncode(data, 64, 1)
		}
	})
	b.Run("secded", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_ = SecdedEncode(data, 64, 1)
		}
	})
	b.Run("reed-solomon", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := ReedSolomonEncode(data, 241, 15, 1024, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// BenchmarkAblationHeaderProtection compares container header handling:
// replicated+voted headers vs what a single unprotected header would
// survive, measured as recovery rate under single-bit header flips.
func BenchmarkAblationHeaderProtection(b *testing.B) {
	eng, err := core.NewEngine(core.EngineOptions{MaxThreads: 1, CacheDir: "-", SampleBytes: 32 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	data := make([]byte, 64<<10)
	enc, err := eng.Encode(data, 0.15, core.AnyBW, core.AnyECC)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	b.ResetTimer()
	ok := 0
	n := 0
	for i := 0; i < b.N; i++ {
		mut := append([]byte(nil), enc.Encoded...)
		bit := rng.Intn(core.ContainerOverheadBytes * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		if _, err := eng.Decode(mut); err == nil {
			ok++
		}
		n++
	}
	b.ReportMetric(float64(ok)/float64(n), "header-flip-recovery")
}

// BenchmarkAblationHammingWidth compares the 8-bit and 64-bit Hamming
// codeword widths: overhead vs throughput.
func BenchmarkAblationHammingWidth(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(9)).Read(data)
	for _, width := range []int{8, 64} {
		width := width
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var enc []byte
			for i := 0; i < b.N; i++ {
				enc = HammingEncode(data, width, 1)
			}
			b.ReportMetric(float64(len(enc)-len(data))/float64(len(data)), "overhead")
		})
	}
}

// BenchmarkAblationParityBlock sweeps the parity interleaving block
// size: detection granularity vs overhead vs speed.
func BenchmarkAblationParityBlock(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(10)).Read(data)
	for _, bb := range []int{1, 8, 64} {
		bb := bb
		b.Run(fmt.Sprintf("block=%d", bb), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var enc []byte
			for i := 0; i < b.N; i++ {
				enc = ParityEncode(data, bb, 1)
			}
			b.ReportMetric(float64(len(enc)-len(data))/float64(len(data)), "overhead")
		})
	}
}

// BenchmarkAblationRSDeviceSize sweeps the Reed-Solomon device size:
// CRC-table overhead vs encode throughput.
func BenchmarkAblationRSDeviceSize(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(11)).Read(data)
	for _, ds := range []int{256, 1024, 4096} {
		ds := ds
		b.Run(fmt.Sprintf("devsize=%d", ds), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var enc []byte
			var err error
			for i := 0; i < b.N; i++ {
				enc, err = ReedSolomonEncode(data, 241, 15, ds, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(enc)-len(data))/float64(len(data)), "overhead")
		})
	}
}

// BenchmarkStreamPipelined measures chunk-stream throughput at
// pipeline depths 1 (the historical sequential path) and GOMAXPROCS,
// on an 8-chunk stream — the speedup of overlapping chunk encodes and
// verify/repairs across cores. Output bytes are identical at every
// depth, so this isolates scheduling, not format. Results are recorded
// in BENCH_stream.json by verify.sh; the ≥1.5x pipelined-vs-sequential
// claim applies on hosts with ≥4 cores (a single-core host serializes
// the workers and shows parity instead).
func BenchmarkStreamPipelined(b *testing.B) {
	eng := &core.Engine{} // Choice-based streaming needs no training state
	choice := core.Choice{Config: core.Config{Method: ReedSolomon, Param: 15}, Threads: 1}
	const chunkSize = 256 << 10
	data := make([]byte, 8*chunkSize) // 8 chunks
	rand.New(rand.NewSource(16)).Read(data)

	depths := []int{1, runtime.GOMAXPROCS(0)}
	if depths[1] < 4 {
		depths[1] = 4 // still exercise the concurrent machinery
	}
	for _, pl := range depths {
		pl := pl
		b.Run(fmt.Sprintf("encode/pipeline=%d", pl), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				w, err := eng.NewChunkWriterChoice(io.Discard, choice,
					core.StreamOptions{ChunkSize: chunkSize, Pipeline: pl})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.Write(data); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	var encoded bytes.Buffer
	w, err := eng.NewChunkWriterChoice(&encoded, choice, core.StreamOptions{ChunkSize: chunkSize, Pipeline: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	for _, pl := range depths {
		pl := pl
		b.Run(fmt.Sprintf("decode/pipeline=%d", pl), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r := core.NewChunkReaderWith(bytes.NewReader(encoded.Bytes()), 1,
					core.StreamOptions{Pipeline: pl})
				n, err := io.Copy(io.Discard, r)
				if err != nil {
					b.Fatal(err)
				}
				if n != int64(len(data)) {
					b.Fatalf("decoded %d bytes, want %d", n, len(data))
				}
			}
		})
	}
}

// BenchmarkStreamSteady measures the steady-state per-chunk cost of
// the stream: one writer (and one reader) is reused across all b.N
// iterations, so per-stream setup is amortized away and what remains
// is the hot path the allocation budget applies to. ReportAllocs makes
// allocs/op and B/op part of the recorded output; verify.sh gates
// BENCH_stream.json on allocs/op staying within the steady-state
// budget (see docs/ALLOCATIONS.md).
func BenchmarkStreamSteady(b *testing.B) {
	eng := &core.Engine{}
	choice := core.Choice{Config: core.Config{Method: ReedSolomon, Param: 15}, Threads: 1}
	const chunkSize = 256 << 10
	chunk := make([]byte, chunkSize)
	rand.New(rand.NewSource(23)).Read(chunk)

	for _, pl := range []int{1, 4} {
		pl := pl
		opts := core.StreamOptions{ChunkSize: chunkSize, Pipeline: pl}
		b.Run(fmt.Sprintf("encode/pipeline=%d", pl), func(b *testing.B) {
			w, err := eng.NewChunkWriterChoice(io.Discard, choice, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			// Warm the buffer pools and per-worker scratch before counting.
			for i := 0; i < 4*pl+8; i++ {
				if _, err := w.Write(chunk); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(chunkSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Write(chunk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	var encoded bytes.Buffer
	w, err := eng.NewChunkWriterChoice(&encoded, choice, core.StreamOptions{ChunkSize: chunkSize, Pipeline: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Write(chunk); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	for _, pl := range []int{1, 4} {
		pl := pl
		b.Run(fmt.Sprintf("decode/pipeline=%d", pl), func(b *testing.B) {
			r := core.NewChunkReaderWith(&loopStream{stream: encoded.Bytes()}, 1,
				core.StreamOptions{Pipeline: pl})
			defer r.Close()
			buf := make([]byte, chunkSize)
			for i := 0; i < 4*pl+8; i++ {
				if _, err := io.ReadFull(r, buf); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(chunkSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := io.ReadFull(r, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// loopStream replays one encoded chunk stream forever, giving the
// steady-state decode benchmark an endless well-formed input.
type loopStream struct {
	stream []byte
	off    int
}

func (l *loopStream) Read(p []byte) (int, error) {
	if l.off == len(l.stream) {
		l.off = 0
	}
	n := copy(p, l.stream[l.off:])
	l.off += n
	return n, nil
}

// BenchmarkCompressorSZ measures the SZ-like substrate itself, the
// input side of the whole pipeline.
func BenchmarkCompressorSZ(b *testing.B) {
	f := datasets.CESM(64, 128, 12)
	b.SetBytes(int64(f.SizeBytes()))
	for i := 0; i < b.N; i++ {
		if _, err := sz.Compress(f.Data, f.Dims, sz.Options{Mode: sz.ModeABS, ErrorBound: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultInjectionTrial measures one end-to-end fault-injection
// trial (flip, decode sandbox, metrics) — the unit of the whole study.
func BenchmarkFaultInjectionTrial(b *testing.B) {
	f := datasets.CESM(32, 64, 13)
	comp, err := newStudyCompressor()
	if err != nil {
		b.Fatal(err)
	}
	camp, err := faultinject.Run(faultinject.Config{
		Compressor:     comp,
		Data:           f.Data,
		Dims:           f.Dims,
		SampleFraction: 1,
		MaxTrials:      1,
		Seed:           1,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = camp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultinject.Run(faultinject.Config{
			Compressor:     comp,
			Data:           f.Data,
			Dims:           f.Dims,
			SampleFraction: 1,
			MaxTrials:      10,
			Seed:           int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// newStudyCompressor returns the default study configuration
// (SZ-ABS, eps = 0.1) through the pressio registry.
func newStudyCompressor() (pressio.Compressor, error) {
	return pressio.New("SZ-ABS", 0.1)
}

// BenchmarkExtResilienceMatrix runs the extension experiment: the full
// ECC-method x fault-pattern recovery matrix.
func BenchmarkExtResilienceMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtResilienceMatrix(32<<10, 30, 12)
		if err != nil {
			b.Fatal(err)
		}
		silent := 0
		for _, row := range r.Rows {
			silent += row.Silent
		}
		b.ReportMetric(float64(silent), "silent-corruptions")
	}
}

// BenchmarkAblationBurstProtection compares the two burst-capable
// methods: interleaved SEC-DED (12.5% overhead, permutation cost) vs
// Reed-Solomon (tunable overhead, matrix cost) on encode throughput.
func BenchmarkAblationBurstProtection(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(14)).Read(data)
	for _, cfg := range []core.Config{
		{Method: ILSECDED, Param: 256},
		{Method: ReedSolomon, Param: 32},
	} {
		cfg := cfg
		b.Run(cfg.String(), func(b *testing.B) {
			code, err := cfg.Build(1)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			var enc []byte
			for i := 0; i < b.N; i++ {
				enc = code.Encode(data)
			}
			b.ReportMetric(float64(len(enc)-len(data))/float64(len(data)), "overhead")
		})
	}
}

// BenchmarkAblationCRCWidth compares Reed-Solomon device checksum
// widths: CRC-32C (miss probability 2^-32) vs truncated CRC-16
// (2^-16, two bytes per device cheaper).
func BenchmarkAblationCRCWidth(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(15)).Read(data)
	for _, width := range []int{2, 4} {
		width := width
		b.Run(fmt.Sprintf("crc%d", width*8), func(b *testing.B) {
			base, err := reedsolomon.New(241, 15, 1024, 1)
			if err != nil {
				b.Fatal(err)
			}
			code, err := base.WithChecksumBytes(width)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			var enc []byte
			for i := 0; i < b.N; i++ {
				enc = code.Encode(data)
			}
			b.ReportMetric(float64(len(enc)-len(data))/float64(len(data)), "overhead")
		})
	}
}

// BenchmarkExtCrossover runs the burst-protection crossover map; the
// metric is the recovery gap between the methods at a 512-byte burst.
func BenchmarkExtCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtCrossover(128<<10, 8, 16)
		if err != nil {
			b.Fatal(err)
		}
		covered := 0
		for _, row := range r.Rows {
			if row.BurstBytes == 512 && row.Recovered == row.Trials {
				covered++
			}
		}
		b.ReportMetric(float64(covered), "configs-covering-512B")
	}
}
