package arc

// Custom ECC registration — implements the paper's future-work API:
// "an API to further simplify the addition of custom ECC algorithms
// and constraints." Registered families participate in training,
// constraint optimization, and self-describing decode exactly like the
// built-in methods.

import (
	"repro/internal/core"
	"repro/internal/ecc"
)

// CustomMethodBase is the first method id available to custom codes
// (ids below it are ARC's built-ins).
const CustomMethodBase = core.CustomMethodBase

// CustomMethod describes a custom ECC family; see core.CustomMethod.
type CustomMethod = core.CustomMethod

// CustomBuilder constructs code instances for a custom family.
type CustomBuilder = core.CustomBuilder

// RegisterCustomMethod adds an ECC family to ARC's configuration
// space. Engines initialized afterwards train and select it under the
// usual constraints, and Decode dispatches to it via the container's
// method id.
func RegisterCustomMethod(m CustomMethod) error {
	return core.RegisterCustomMethod(m)
}

// UnregisterCustomMethod removes a previously registered family.
func UnregisterCustomMethod(id ecc.Method) {
	core.UnregisterCustomMethod(id)
}
