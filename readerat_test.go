package arc

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestFileReaderAtRoundTrip(t *testing.T) {
	a := initTest(t, 1)
	dir := t.TempDir()
	src := filepath.Join(dir, "src.bin")
	enc := filepath.Join(dir, "enc.arc")
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(210)).Read(data)
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// EncodeFile writes container v2, so the reader opens indexed.
	if _, _, err := a.EncodeFile(src, enc, 0.3, AnyBW, AnyECC, 64<<10); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileReaderAt(enc, RangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Indexed() {
		t.Fatal("EncodeFile output opened without a v2 index")
	}
	if r.Size() != int64(len(data)) {
		t.Fatalf("Size() = %d, want %d", r.Size(), len(data))
	}
	if r.Chunks() != 5 {
		t.Fatalf("Chunks() = %d, want 5", r.Chunks())
	}

	// Ranged reads against the original, including cache-warm repeats.
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 20; trial++ {
		first := rng.Int63n(int64(len(data)))
		n := rng.Int63n(100 << 10)
		dst := make([]byte, n)
		got, _, err := r.ReadRange(dst, first, n)
		want := int64(len(data)) - first
		if n < want {
			want = n
		}
		if first+n > int64(len(data)) {
			if err != io.EOF {
				t.Fatalf("range past end: %v, want io.EOF", err)
			}
		} else if err != nil {
			t.Fatalf("ReadRange(%d, %d): %v", first, n, err)
		}
		if int64(got) != want || !bytes.Equal(dst[:got], data[first:first+want]) {
			t.Fatalf("range [%d, +%d) mismatch (%d bytes)", first, n, got)
		}
	}

	// io.ReaderAt contract via the stdlib's own consumer.
	section := io.NewSectionReader(r, 1000, 5000)
	got, err := io.ReadAll(section)
	if err != nil || !bytes.Equal(got, data[1000:6000]) {
		t.Fatalf("SectionReader read: %v", err)
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("ReadAt after Close succeeded")
	}
}

func TestOpenFileReaderAtMissing(t *testing.T) {
	if _, err := OpenFileReaderAt("/nonexistent/arc", RangeOptions{}); err == nil {
		t.Fatal("missing archive must fail to open")
	}
}
