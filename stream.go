package arc

// Streaming API: protect byte streams of any length through the
// standard io.Writer / io.Reader interfaces. The stream is a sequence
// of independent self-describing chunks, so damage in one chunk never
// prevents later chunks from decoding, and a reader needs nothing but
// the stream itself.

import (
	"io"

	"repro/internal/core"
)

// StreamReport aggregates repair statistics over a streamed decode.
type StreamReport = core.Report

// Writer is a streaming ARC encoder. Bytes written are buffered into
// chunks, each protected with the configuration chosen at creation,
// and emitted to the underlying writer. Close flushes the final chunk.
type Writer struct {
	cw *core.ChunkWriter
}

// NewWriter creates a streaming encoder over w under the usual three
// constraints. chunkSize <= 0 selects the 4 MiB default.
func (a *ARC) NewWriter(w io.Writer, mem, bw float64, res Resiliency, chunkSize int) (*Writer, error) {
	cw, err := a.eng.NewChunkWriter(w, mem, bw, res, chunkSize)
	if err != nil {
		return nil, err
	}
	return &Writer{cw: cw}, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) { return w.cw.Write(p) }

// Close flushes the final chunk. It does not close the underlying
// writer.
func (w *Writer) Close() error { return w.cw.Close() }

// Choice returns the configuration the stream encodes with.
func (w *Writer) Choice() Choice { return w.cw.Choice() }

// BytesWritten returns the number of encoded bytes emitted so far.
func (w *Writer) BytesWritten() int64 { return w.cw.BytesWritten() }

// Reader is a streaming ARC decoder: it verifies and repairs each
// chunk as it is consumed. Read returns an error as soon as a chunk
// with uncorrectable damage is reached; everything before it has been
// delivered intact.
type Reader struct {
	cr *core.ChunkReader
}

// NewReader creates a streaming decoder over r. workers bounds the
// per-chunk decode parallelism (AnyThreads = all CPUs).
func NewReader(r io.Reader, workers int) *Reader {
	return &Reader{cr: core.NewChunkReader(r, workers)}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) { return r.cr.Read(p) }

// Report returns the accumulated repair statistics.
func (r *Reader) Report() StreamReport { return r.cr.Report() }

// ChunkInfo summarizes one container of an ARC stream.
type ChunkInfo = core.ChunkInfo

// InspectStream parses an ARC stream's chunk headers without decoding
// payloads — cheap metadata access for tooling.
func InspectStream(r io.Reader) ([]ChunkInfo, error) {
	return core.InspectStream(r)
}
