package arc

// Streaming API: protect byte streams of any length through the
// standard io.Writer / io.Reader interfaces. The stream is a sequence
// of independent self-describing chunks, so damage in one chunk never
// prevents later chunks from decoding, and a reader needs nothing but
// the stream itself.
//
// Chunk independence also makes the stream pipelinable: with a
// Pipeline of n, up to n chunks are encoded (or verified/repaired)
// concurrently while bytes are still emitted/consumed strictly in
// order. Output is byte-identical at every pipeline setting; see
// docs/STREAMING.md for the knob's semantics and guarantees.

import (
	"io"

	"repro/internal/core"
)

// StreamReport aggregates repair statistics over a streamed decode.
type StreamReport = core.Report

// StreamOptions tunes chunked streaming: ChunkSize is the plaintext
// bytes per chunk (<= 0 selects the 4 MiB default), Pipeline bounds
// how many chunks are processed concurrently (1 = strictly sequential,
// <= 0 = bounded by the worker budget), and Indexed appends the
// container v2 footer index enabling ReaderAt random access (see
// docs/CONTAINER.md).
type StreamOptions = core.StreamOptions

// Writer is a streaming ARC encoder. Bytes written are buffered into
// chunks, each protected with the configuration chosen at creation,
// and emitted to the underlying writer. Close flushes the final chunk
// and, when pipelined, joins every in-flight encode.
type Writer struct {
	cw *core.ChunkWriter
}

// NewWriter creates a streaming encoder over w under the usual three
// constraints. chunkSize <= 0 selects the 4 MiB default.
func (a *ARC) NewWriter(w io.Writer, mem, bw float64, res Resiliency, chunkSize int) (*Writer, error) {
	return a.NewWriterWith(w, mem, bw, res, StreamOptions{ChunkSize: chunkSize})
}

// NewWriterWith is NewWriter with explicit stream options (chunk size
// and encode pipelining).
func (a *ARC) NewWriterWith(w io.Writer, mem, bw float64, res Resiliency, opts StreamOptions) (*Writer, error) {
	cw, err := a.eng.NewChunkWriterWith(w, mem, bw, res, opts)
	if err != nil {
		return nil, err
	}
	return &Writer{cw: cw}, nil
}

// NewWriterChoice creates a streaming encoder with an explicit
// optimizer choice — the streaming analog of EncodeWith.
func (a *ARC) NewWriterChoice(w io.Writer, c Choice, opts StreamOptions) (*Writer, error) {
	cw, err := a.eng.NewChunkWriterChoice(w, c, opts)
	if err != nil {
		return nil, err
	}
	return &Writer{cw: cw}, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) { return w.cw.Write(p) }

// Close flushes the final chunk and joins any in-flight encodes. It
// does not close the underlying writer.
func (w *Writer) Close() error { return w.cw.Close() }

// Choice returns the configuration the stream encodes with.
func (w *Writer) Choice() Choice { return w.cw.Choice() }

// BytesWritten returns the number of encoded bytes emitted so far.
func (w *Writer) BytesWritten() int64 { return w.cw.BytesWritten() }

// Reader is a streaming ARC decoder: it verifies and repairs each
// chunk as it is consumed. Read returns an error as soon as a chunk
// with uncorrectable damage is reached; everything before it has been
// delivered intact.
type Reader struct {
	cr *core.ChunkReader
}

// NewReader creates a streaming decoder over r. workers bounds the
// per-chunk decode parallelism (AnyThreads = all CPUs).
func NewReader(r io.Reader, workers int) *Reader {
	return NewReaderWith(r, workers, StreamOptions{})
}

// NewReaderWith is NewReader with explicit stream options: Pipeline
// bounds how many chunks are read ahead and verified/repaired
// concurrently while Read consumes repaired chunks in order.
func NewReaderWith(r io.Reader, workers int, opts StreamOptions) *Reader {
	return &Reader{cr: core.NewChunkReaderWith(r, workers, opts)}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) { return r.cr.Read(p) }

// Close releases the reader without requiring a full drain: in-flight
// chunk decodes are cancelled and joined. Reading the stream to its
// terminal error (or EOF) also releases everything, but callers that
// may abandon a stream early should defer Close.
func (r *Reader) Close() error { return r.cr.Close() }

// Report returns the accumulated repair statistics.
func (r *Reader) Report() StreamReport { return r.cr.Report() }

// ChunkInfo summarizes one container of an ARC stream.
type ChunkInfo = core.ChunkInfo

// InspectStream parses an ARC stream's chunk headers without decoding
// payloads — cheap metadata access for tooling.
func InspectStream(r io.Reader) ([]ChunkInfo, error) {
	return core.InspectStream(r)
}
