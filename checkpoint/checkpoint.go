// Package checkpoint combines the repository's two layers into the
// paper's end-to-end use case: lossy-compressed, ARC-protected
// checkpoints of floating-point fields. Save compresses a field with a
// chosen compressor configuration and wraps the result (plus the
// metadata needed to reverse it) in an ARC stream; Load repairs any
// soft errors accumulated at rest, then decompresses.
//
// Everything in the checkpoint — including its own metadata header —
// travels inside the ARC stream, so there is no unprotected byte in
// the file.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	arc "repro"
	"repro/internal/pressio"
)

const (
	magic   = "ACKP"
	version = 1
)

// ErrFormat reports a stream that is not a checkpoint (or has a
// corrupted header beyond ARC's repair).
var ErrFormat = errors.New("checkpoint: invalid format")

// Options configures Save.
type Options struct {
	// Compressor names the lossy configuration (a pressio name:
	// SZ-ABS, SZ-PWREL, SZ-PSNR, ZFP-ACC, ZFP-Rate). Empty selects
	// SZ-ABS.
	Compressor string
	// Bound is the compressor's error-bounding parameter (0 selects
	// 1e-3 absolute).
	Bound float64
	// Mem, BW, Resiliency are ARC's constraints (zero values lift
	// memory/throughput; Resiliency zero value = ARC_ANY_ECC).
	Mem        float64
	BW         float64
	Resiliency arc.Resiliency
	// ChunkBytes sizes the ARC stream chunks (0 = default).
	ChunkBytes int
}

func (o Options) withDefaults() Options {
	if o.Compressor == "" {
		o.Compressor = "SZ-ABS"
	}
	if o.Bound == 0 {
		o.Bound = 1e-3
	}
	if o.Mem == 0 {
		o.Mem = arc.AnyMem
	}
	return o
}

// Info describes a saved or loaded checkpoint.
type Info struct {
	Compressor      string
	Bound           float64
	Dims            []int
	Elements        int
	CompressedBytes int
	// Choice is the ECC configuration ARC selected (Save only).
	Choice arc.Choice
	// Repairs aggregates ARC's repair report (Load only).
	Repairs arc.StreamReport
}

// Save compresses data (row-major, dims as in the compressors) and
// writes a protected checkpoint to w.
func Save(w io.Writer, a *arc.ARC, data []float64, dims []int, opts Options) (*Info, error) {
	opts = opts.withDefaults()
	comp, err := pressio.New(opts.Compressor, opts.Bound)
	if err != nil {
		return nil, err
	}
	compressed, err := comp.Compress(data, dims)
	if err != nil {
		return nil, err
	}
	var payload bytes.Buffer
	payload.WriteString(magic)
	payload.WriteByte(version)
	if len(opts.Compressor) > 255 {
		return nil, fmt.Errorf("checkpoint: compressor name too long")
	}
	payload.WriteByte(byte(len(opts.Compressor)))
	payload.WriteString(opts.Compressor)
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(opts.Bound))
	payload.Write(scratch[:])
	payload.WriteByte(byte(len(dims)))
	for _, d := range dims {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(d))
		payload.Write(scratch[:4])
	}
	payload.Write(compressed)

	aw, err := a.NewWriter(w, opts.Mem, opts.BW, opts.Resiliency, opts.ChunkBytes)
	if err != nil {
		return nil, err
	}
	if _, err := aw.Write(payload.Bytes()); err != nil {
		return nil, err
	}
	if err := aw.Close(); err != nil {
		return nil, err
	}
	return &Info{
		Compressor:      opts.Compressor,
		Bound:           opts.Bound,
		Dims:            append([]int(nil), dims...),
		Elements:        len(data),
		CompressedBytes: len(compressed),
		Choice:          aw.Choice(),
	}, nil
}

// Load reads a checkpoint from r, repairing soft errors through ARC,
// and decompresses the field. workers bounds decode parallelism.
func Load(r io.Reader, workers int) ([]float64, []int, *Info, error) {
	ar := arc.NewReader(r, workers)
	payload, err := io.ReadAll(ar)
	if err != nil {
		return nil, nil, nil, err
	}
	rd := bytes.NewReader(payload)
	hdr := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(rd, hdr); err != nil || string(hdr[:len(magic)]) != magic {
		return nil, nil, nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if hdr[len(magic)] != version {
		return nil, nil, nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, hdr[len(magic)])
	}
	nameLen := int(hdr[len(magic)+1])
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(rd, nameBuf); err != nil {
		return nil, nil, nil, fmt.Errorf("%w: truncated name", ErrFormat)
	}
	var scratch [8]byte
	if _, err := io.ReadFull(rd, scratch[:]); err != nil {
		return nil, nil, nil, fmt.Errorf("%w: truncated bound", ErrFormat)
	}
	bound := math.Float64frombits(binary.LittleEndian.Uint64(scratch[:]))
	nd := make([]byte, 1)
	if _, err := io.ReadFull(rd, nd); err != nil || nd[0] < 1 || nd[0] > 3 {
		return nil, nil, nil, fmt.Errorf("%w: bad dims", ErrFormat)
	}
	dims := make([]int, nd[0])
	for i := range dims {
		if _, err := io.ReadFull(rd, scratch[:4]); err != nil {
			return nil, nil, nil, fmt.Errorf("%w: truncated dims", ErrFormat)
		}
		dims[i] = int(binary.LittleEndian.Uint32(scratch[:4]))
	}
	compressed := payload[len(payload)-rd.Len():]
	comp, err := pressio.New(string(nameBuf), bound)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	data, gotDims, err := comp.Decompress(compressed)
	if err != nil {
		return nil, nil, nil, err
	}
	info := &Info{
		Compressor:      string(nameBuf),
		Bound:           bound,
		Dims:            gotDims,
		Elements:        len(data),
		CompressedBytes: len(compressed),
		Repairs:         ar.Report(),
	}
	return data, gotDims, info, nil
}
