package checkpoint

// Multi-field archives: real simulation checkpoints carry many named
// variables (pressure, temperature, velocity components, ...). An
// Archive packs any number of named fields — each with its own
// compressor configuration — into a single ARC-protected stream.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	arc "repro"
	"repro/internal/pressio"
)

const (
	archiveMagic   = "ACKA"
	archiveVersion = 1
	// maxArchiveFields bounds header-driven allocations.
	maxArchiveFields = 1 << 16
)

// ArchiveWriter accumulates named fields and writes them as one
// protected stream.
type ArchiveWriter struct {
	fields []archiveField
}

type archiveField struct {
	name       string
	compressor string
	bound      float64
	dims       []int
	compressed []byte
}

// NewArchiveWriter creates an empty archive.
func NewArchiveWriter() *ArchiveWriter { return &ArchiveWriter{} }

// Add compresses a field under the given per-field options and queues
// it. Field names must be unique and at most 255 bytes.
func (aw *ArchiveWriter) Add(name string, data []float64, dims []int, opts Options) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("checkpoint: invalid field name %q", name)
	}
	for _, f := range aw.fields {
		if f.name == name {
			return fmt.Errorf("checkpoint: duplicate field %q", name)
		}
	}
	opts = opts.withDefaults()
	comp, err := pressio.New(opts.Compressor, opts.Bound)
	if err != nil {
		return err
	}
	compressed, err := comp.Compress(data, dims)
	if err != nil {
		return fmt.Errorf("checkpoint: field %q: %w", name, err)
	}
	aw.fields = append(aw.fields, archiveField{
		name:       name,
		compressor: opts.Compressor,
		bound:      opts.Bound,
		dims:       append([]int(nil), dims...),
		compressed: compressed,
	})
	return nil
}

// Fields returns the names queued so far, in insertion order.
func (aw *ArchiveWriter) Fields() []string {
	out := make([]string, len(aw.fields))
	for i, f := range aw.fields {
		out[i] = f.name
	}
	return out
}

// WriteTo protects the archive with ARC under the given constraints
// and writes it to w. The archive (including all metadata) travels
// inside the ARC stream.
func (aw *ArchiveWriter) WriteTo(w io.Writer, a *arc.ARC, mem, bw float64, res arc.Resiliency, chunkBytes int) error {
	var payload bytes.Buffer
	payload.WriteString(archiveMagic)
	payload.WriteByte(archiveVersion)
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(aw.fields)))
	payload.Write(scratch[:4])
	for _, f := range aw.fields {
		payload.WriteByte(byte(len(f.name)))
		payload.WriteString(f.name)
		payload.WriteByte(byte(len(f.compressor)))
		payload.WriteString(f.compressor)
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(f.bound))
		payload.Write(scratch[:])
		payload.WriteByte(byte(len(f.dims)))
		for _, d := range f.dims {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(d))
			payload.Write(scratch[:4])
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(f.compressed)))
		payload.Write(scratch[:4])
		payload.Write(f.compressed)
	}
	pw, err := a.NewWriter(w, mem, bw, res, chunkBytes)
	if err != nil {
		return err
	}
	if _, err := pw.Write(payload.Bytes()); err != nil {
		return err
	}
	return pw.Close()
}

// ArchiveField is one loaded field.
type ArchiveField struct {
	Name       string
	Compressor string
	Bound      float64
	Dims       []int
	Data       []float64
}

// Archive is a loaded multi-field checkpoint.
type Archive struct {
	Fields  []ArchiveField
	Repairs arc.StreamReport
}

// Get returns a field by name (nil when absent).
func (ar *Archive) Get(name string) *ArchiveField {
	for i := range ar.Fields {
		if ar.Fields[i].Name == name {
			return &ar.Fields[i]
		}
	}
	return nil
}

// LoadArchive reads an archive from r, repairing soft errors through
// ARC and decompressing every field.
func LoadArchive(r io.Reader, workers int) (*Archive, error) {
	pr := arc.NewReader(r, workers)
	payload, err := io.ReadAll(pr)
	if err != nil {
		return nil, err
	}
	rd := bytes.NewReader(payload)
	hdr := make([]byte, len(archiveMagic)+1)
	if _, err := io.ReadFull(rd, hdr); err != nil || string(hdr[:len(archiveMagic)]) != archiveMagic {
		return nil, fmt.Errorf("%w: bad archive magic", ErrFormat)
	}
	if hdr[len(archiveMagic)] != archiveVersion {
		return nil, fmt.Errorf("%w: unsupported archive version %d", ErrFormat, hdr[len(archiveMagic)])
	}
	var scratch [8]byte
	if _, err := io.ReadFull(rd, scratch[:4]); err != nil {
		return nil, fmt.Errorf("%w: truncated field count", ErrFormat)
	}
	count := int(binary.LittleEndian.Uint32(scratch[:4]))
	if count < 0 || count > maxArchiveFields {
		return nil, fmt.Errorf("%w: implausible field count %d", ErrFormat, count)
	}
	ar := &Archive{Repairs: pr.Report()}
	readStr := func() (string, error) {
		var l [1]byte
		if _, err := io.ReadFull(rd, l[:]); err != nil {
			return "", err
		}
		b := make([]byte, l[0])
		if _, err := io.ReadFull(rd, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	for i := 0; i < count; i++ {
		name, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("%w: field %d name", ErrFormat, i)
		}
		compName, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("%w: field %q compressor", ErrFormat, name)
		}
		if _, err := io.ReadFull(rd, scratch[:]); err != nil {
			return nil, fmt.Errorf("%w: field %q bound", ErrFormat, name)
		}
		bound := math.Float64frombits(binary.LittleEndian.Uint64(scratch[:]))
		var nd [1]byte
		if _, err := io.ReadFull(rd, nd[:]); err != nil || nd[0] < 1 || nd[0] > 3 {
			return nil, fmt.Errorf("%w: field %q dims", ErrFormat, name)
		}
		dims := make([]int, nd[0])
		for j := range dims {
			if _, err := io.ReadFull(rd, scratch[:4]); err != nil {
				return nil, fmt.Errorf("%w: field %q dims", ErrFormat, name)
			}
			dims[j] = int(binary.LittleEndian.Uint32(scratch[:4]))
		}
		if _, err := io.ReadFull(rd, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: field %q length", ErrFormat, name)
		}
		clen := int(binary.LittleEndian.Uint32(scratch[:4]))
		if clen < 0 || clen > rd.Len() {
			return nil, fmt.Errorf("%w: field %q length %d", ErrFormat, name, clen)
		}
		compressed := make([]byte, clen)
		if _, err := io.ReadFull(rd, compressed); err != nil {
			return nil, fmt.Errorf("%w: field %q payload", ErrFormat, name)
		}
		comp, err := pressio.New(compName, bound)
		if err != nil {
			return nil, fmt.Errorf("%w: field %q: %v", ErrFormat, name, err)
		}
		data, gotDims, err := comp.Decompress(compressed)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: field %q: %w", name, err)
		}
		ar.Fields = append(ar.Fields, ArchiveField{
			Name:       name,
			Compressor: compName,
			Bound:      bound,
			Dims:       gotDims,
			Data:       data,
		})
	}
	return ar, nil
}
