package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	arc "repro"
	"repro/internal/datasets"
	"repro/internal/metrics"
)

func TestArchiveRoundTrip(t *testing.T) {
	a := testARC(t)
	cesm := datasets.CESM(24, 48, 10)
	isabel := datasets.Isabel(4, 12, 12, 11)

	aw := NewArchiveWriter()
	if err := aw.Add("cldlow", cesm.Data, cesm.Dims, Options{Compressor: "SZ-ABS", Bound: 0.01}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Add("pressure", isabel.Data, isabel.Dims, Options{Compressor: "ZFP-ACC", Bound: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := aw.Fields(); len(got) != 2 || got[0] != "cldlow" || got[1] != "pressure" {
		t.Fatalf("fields %v", got)
	}

	var buf bytes.Buffer
	if err := aw.WriteTo(&buf, a, arc.AnyMem, arc.AnyBW, arc.WithErrorsPerMB(1), 0); err != nil {
		t.Fatal(err)
	}
	ar, err := LoadArchive(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Fields) != 2 {
		t.Fatalf("loaded %d fields", len(ar.Fields))
	}
	cf := ar.Get("cldlow")
	if cf == nil || cf.Compressor != "SZ-ABS" || cf.Bound != 0.01 {
		t.Fatalf("cldlow metadata %+v", cf)
	}
	if i := metrics.VerifyBound(cesm.Data, cf.Data, metrics.BoundAbs, 0.01); i != -1 {
		t.Fatalf("cldlow bound violated at %d", i)
	}
	pf := ar.Get("pressure")
	if pf == nil || pf.Dims[0] != 4 {
		t.Fatalf("pressure metadata %+v", pf)
	}
	if i := metrics.VerifyBound(isabel.Data, pf.Data, metrics.BoundAbs, 0.5); i != -1 {
		t.Fatalf("pressure bound violated at %d", i)
	}
	if ar.Get("missing") != nil {
		t.Fatal("absent field must return nil")
	}
}

func TestArchiveSurvivesFlips(t *testing.T) {
	a := testARC(t)
	cesm := datasets.CESM(16, 16, 12)
	aw := NewArchiveWriter()
	if err := aw.Add("f", cesm.Data, cesm.Dims, Options{Bound: 0.01}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := aw.WriteTo(&buf, a, arc.AnyMem, arc.AnyBW, arc.WithErrorsPerMB(1), 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		mut := append([]byte(nil), buf.Bytes()...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		ar, err := LoadArchive(bytes.NewReader(mut), 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if i := metrics.VerifyBound(cesm.Data, ar.Get("f").Data, metrics.BoundAbs, 0.01); i != -1 {
			t.Fatalf("trial %d: bound violated after repair", trial)
		}
	}
}

func TestArchiveValidation(t *testing.T) {
	aw := NewArchiveWriter()
	if err := aw.Add("", []float64{1}, []int{1}, Options{}); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := aw.Add("x", []float64{1}, []int{1}, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Add("x", []float64{1}, []int{1}, Options{}); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if err := aw.Add("y", []float64{1}, []int{2}, Options{}); err == nil {
		t.Fatal("dims mismatch must fail")
	}
	if err := aw.Add("z", []float64{1}, []int{1}, Options{Compressor: "LZ4"}); err == nil {
		t.Fatal("unknown compressor must fail")
	}
	if _, err := LoadArchive(bytes.NewReader([]byte("garbage")), 1); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestArchiveNotACheckpointStream(t *testing.T) {
	// A single-field checkpoint is not an archive and vice versa.
	a := testARC(t)
	f := datasets.CESM(8, 8, 14)
	var single bytes.Buffer
	if _, err := Save(&single, a, f.Data, f.Dims, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArchive(bytes.NewReader(single.Bytes()), 1); err == nil {
		t.Fatal("single checkpoint must not load as archive")
	}
}
