package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	arc "repro"
	"repro/internal/datasets"
	"repro/internal/metrics"
)

func testARC(t *testing.T) *arc.ARC {
	t.Helper()
	a, err := arc.InitWithOptions(1, arc.Options{CacheDir: "-", TrainSampleBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return a
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := testARC(t)
	f := datasets.CESM(32, 64, 1)
	var buf bytes.Buffer
	info, err := Save(&buf, a, f.Data, f.Dims, Options{Compressor: "SZ-ABS", Bound: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if info.Elements != f.N() || info.CompressedBytes == 0 {
		t.Fatalf("info %+v", info)
	}
	got, dims, linfo, err := Load(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != f.Dims[0] || dims[1] != f.Dims[1] {
		t.Fatalf("dims %v", dims)
	}
	if linfo.Compressor != "SZ-ABS" || linfo.Bound != 0.01 {
		t.Fatalf("loaded info %+v", linfo)
	}
	if n := metrics.CountIncorrect(f.Data, got, 0.01*(1+1e-9)); n != 0 {
		t.Fatalf("%d bound violations", n)
	}
}

func TestDefaults(t *testing.T) {
	a := testARC(t)
	f := datasets.CESM(16, 16, 2)
	var buf bytes.Buffer
	info, err := Save(&buf, a, f.Data, f.Dims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Compressor != "SZ-ABS" || info.Bound != 1e-3 {
		t.Fatalf("defaults not applied: %+v", info)
	}
	if _, _, _, err := Load(bytes.NewReader(buf.Bytes()), 1); err != nil {
		t.Fatal(err)
	}
}

func TestAllCompressors(t *testing.T) {
	a := testARC(t)
	f := datasets.CESM(32, 32, 3)
	for _, cfg := range []struct {
		name  string
		bound float64
	}{
		{"SZ-ABS", 0.01}, {"SZ-PWREL", 0.01}, {"SZ-PSNR", 80},
		{"ZFP-ACC", 0.01}, {"ZFP-Rate", 16},
	} {
		var buf bytes.Buffer
		if _, err := Save(&buf, a, f.Data, f.Dims, Options{Compressor: cfg.name, Bound: cfg.bound}); err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		got, _, info, err := Load(bytes.NewReader(buf.Bytes()), 1)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if info.Compressor != cfg.name {
			t.Fatalf("%s: loaded as %s", cfg.name, info.Compressor)
		}
		if len(got) != f.N() {
			t.Fatalf("%s: %d elements", cfg.name, len(got))
		}
	}
}

func TestCheckpointSurvivesSoftErrors(t *testing.T) {
	a := testARC(t)
	f := datasets.Isabel(4, 16, 16, 4)
	var buf bytes.Buffer
	if _, err := Save(&buf, a, f.Data, f.Dims, Options{
		Bound:      0.5,
		Resiliency: arc.WithErrorsPerMB(1),
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		mut := append([]byte(nil), buf.Bytes()...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		got, _, info, err := Load(bytes.NewReader(mut), 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range f.Data {
			if math.Abs(got[i]-f.Data[i]) > 0.5+1e-9 {
				t.Fatalf("trial %d: bound violated after repair", trial)
			}
		}
		_ = info
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, _, err := Load(bytes.NewReader([]byte("not a checkpoint")), 1); err == nil {
		t.Fatal("garbage must fail")
	}
	// A valid ARC stream that is not a checkpoint payload.
	a := testARC(t)
	var buf bytes.Buffer
	w, err := a.NewWriter(&buf, arc.AnyMem, arc.AnyBW, arc.AnyECC, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = w.Write([]byte("random protected bytes"))
	_ = w.Close()
	if _, _, _, err := Load(bytes.NewReader(buf.Bytes()), 1); !errors.Is(err, ErrFormat) {
		t.Fatalf("want ErrFormat, got %v", err)
	}
}

func TestSaveRejectsUnknownCompressor(t *testing.T) {
	a := testARC(t)
	var buf bytes.Buffer
	if _, err := Save(&buf, a, []float64{1}, []int{1}, Options{Compressor: "LZMA"}); err == nil {
		t.Fatal("unknown compressor must fail")
	}
}
