package arc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ecc"
)

func initTest(t *testing.T, threads int) *ARC {
	t.Helper()
	a, err := InitWithOptions(threads, Options{CacheDir: "-", TrainSampleBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return a
}

func TestAlgorithm1Integration(t *testing.T) {
	// The paper's Algorithm 1: four lines to integrate ARC.
	a, err := InitWithOptions(AnyThreads, Options{CacheDir: "-", TrainSampleBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(60)).Read(data)
	enc, err := a.Encode(data, AnyMem, AnyBW, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := a.Decode(enc.Encoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("round trip mismatch")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryConstraintHonored(t *testing.T) {
	a := initTest(t, 2)
	data := make([]byte, 512<<10)
	rand.New(rand.NewSource(61)).Read(data)
	for _, mem := range []float64{0.05, 0.125, 0.2, 0.5, 0.9} {
		enc, err := a.Encode(data, mem, AnyBW, AnyECC)
		if err != nil {
			t.Fatalf("mem %.2f: %v", mem, err)
		}
		if enc.Choice.Overhead > mem {
			t.Fatalf("mem %.2f: choice overhead %.3f over budget", mem, enc.Choice.Overhead)
		}
		// Realized size: asymptotic overhead + container + stripe
		// padding; on 512 KiB the slack stays small.
		if enc.ActualOverhead > mem+0.05 {
			t.Fatalf("mem %.2f: actual overhead %.3f", mem, enc.ActualOverhead)
		}
	}
}

func TestResiliencyFlagsSelectFamilies(t *testing.T) {
	a := initTest(t, 1)
	data := make([]byte, 300<<10)
	cases := []struct {
		res  Resiliency
		want ecc.Method
	}{
		{WithMethods(Parity), Parity},
		{WithMethods(Hamming), Hamming},
		{WithMethods(SECDED), SECDED},
		{WithMethods(ReedSolomon), ReedSolomon},
		{WithCaps(CorBurst), ReedSolomon},
		{WithErrorsPerMB(1), SECDED},
	}
	for _, c := range cases {
		enc, err := a.Encode(data, AnyMem, AnyBW, c.res)
		if err != nil {
			t.Fatalf("%+v: %v", c.res, err)
		}
		if enc.Choice.Config.Method != c.want {
			t.Fatalf("res %+v chose %s, want method %v", c.res, enc.Choice.Config, c.want)
		}
	}
}

func TestSingleBitErrorsAlwaysCorrected(t *testing.T) {
	// Section 6.3: with 1 err/MB, ARC corrects every injected single
	// bit error.
	a := initTest(t, 1)
	data := make([]byte, 200<<10)
	rand.New(rand.NewSource(62)).Read(data)
	enc, err := a.Encode(data, AnyMem, AnyBW, WithErrorsPerMB(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 100; trial++ {
		mut := append([]byte(nil), enc.Encoded...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 0x80 >> (bit % 8)
		dec, err := a.Decode(mut)
		if err != nil {
			t.Fatalf("trial %d (bit %d): %v", trial, bit, err)
		}
		if !bytes.Equal(dec.Data, data) {
			t.Fatalf("trial %d: repair failed", trial)
		}
	}
}

func TestTable1EngineSurface(t *testing.T) {
	// Every Table-1 engine function, exercised directly.
	data := make([]byte, 4096)
	rand.New(rand.NewSource(64)).Read(data)

	p := ParityEncode(data, 8, 1)
	if _, _, err := ParityDecode(p, len(data), 8, 1); err != nil {
		t.Fatalf("parity: %v", err)
	}
	p[10] ^= 1
	if _, _, err := ParityDecode(p, len(data), 8, 1); !errors.Is(err, ecc.ErrUncorrectable) {
		t.Fatal("parity must detect")
	}

	h := HammingEncode(data, 64, 1)
	h[100] ^= 0x04
	got, rep, err := HammingDecode(h, len(data), 64, 1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("hamming: %v", err)
	}
	if rep.CorrectedBlocks != 1 {
		t.Fatalf("hamming corrected %d", rep.CorrectedBlocks)
	}

	s := SecdedEncode(data, 8, 1)
	s[7] ^= 0x80
	got, _, err = SecdedDecode(s, len(data), 8, 1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("secded: %v", err)
	}

	r, err := ReedSolomonEncode(data, 8, 2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		r[i] ^= 0xFF // burst across device 0
	}
	got, _, err = ReedSolomonDecode(r, len(data), 8, 2, 64, 1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("reed-solomon: %v", err)
	}
	if _, err := ReedSolomonEncode(data, 200, 100, 64, 1); err == nil {
		t.Fatal("invalid RS shape must error")
	}
}

func TestOptimizerSurface(t *testing.T) {
	a := initTest(t, 2)
	m, err := a.MemoryOptimizer(0.2, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if m.Overhead > 0.2 {
		t.Fatal("memory optimizer over budget")
	}
	tp, err := a.ThroughputOptimizer(0.001, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	if tp.PredictedEncMBs < 0.001 {
		t.Fatal("throughput optimizer under bound")
	}
	j, err := a.JointOptimizer(0.5, 0.001, AnyECC)
	if err != nil {
		t.Fatal(err)
	}
	// The suggestion is advisory: EncodeWith accepts it (or any other).
	data := make([]byte, 10<<10)
	enc, err := a.EncodeWith(data, j)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Encoded, 1) // standalone decode
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("EncodeWith/Decode mismatch")
	}
}

func TestBurstRecoveryEndToEnd(t *testing.T) {
	a := initTest(t, 1)
	data := make([]byte, 600<<10)
	rand.New(rand.NewSource(65)).Read(data)
	enc, err := a.Encode(data, 0.2, AnyBW, WithCaps(CorBurst))
	if err != nil {
		t.Fatal(err)
	}
	// 4 KB burst inside the payload.
	mut := append([]byte(nil), enc.Encoded...)
	for i := 0; i < 4096; i++ {
		mut[200+i] = 0xFF
	}
	dec, err := a.Decode(mut)
	if err != nil {
		t.Fatalf("burst not recovered: %v", err)
	}
	if !bytes.Equal(dec.Data, data) {
		t.Fatal("burst recovery mismatch")
	}
}
