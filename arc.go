// Package arc is ARC — Automated Resiliency for Compression — a Go
// implementation of the system described in "ARC: An Automated
// Approach to Resiliency for Lossy Compressed Data via Error
// Correcting Codes" (Fulp, Poulos, Underwood, Calhoun; HPDC 2021).
//
// A single soft error renders lossy-compressed data unusable. ARC
// protects any byte stream (lossy compressed or otherwise) with an
// automatically chosen error-correcting code, under user constraints
// on storage, throughput, and resiliency:
//
//	a, err := arc.Init(arc.AnyThreads)
//	if err != nil { ... }
//	defer a.Close()
//
//	enc, err := a.Encode(data, arc.AnyMem, arc.AnyBW, arc.AnyECC)
//	...
//	dec, err := a.Decode(enc.Encoded)
//
// Those four lines are the paper's Algorithm 1. Encode picks among
// single-bit even parity, Hamming, SEC-DED, and Reed-Solomon
// configurations using a trained, cached throughput model of this
// machine; Decode verifies, repairs what the chosen code can repair,
// and returns an error for damage beyond it.
//
// The ARC Engine functions of the paper's Table 1 (direct ECC
// encode/decode and the constraint optimizers) are exposed in this
// package as ParityEncode/ParityDecode, HammingEncode/HammingDecode,
// SecdedEncode/SecdedDecode, ReedSolomonEncode/ReedSolomonDecode,
// MemoryOptimizer, ThroughputOptimizer, and JointOptimizer.
package arc

import (
	"repro/internal/core"
	"repro/internal/ecc"
)

// Constraint sentinels mirroring the paper's flags.
const (
	// AnyThreads (ARC_ANY_THREADS) removes the thread cap.
	AnyThreads = core.AnyThreads
	// AnyMem (ARC_ANY_MEM / ARC_ANY_SIZE) removes the storage budget.
	AnyMem = core.AnyMem
	// AnyBW (ARC_ANY_BW) removes the throughput lower bound.
	AnyBW = core.AnyBW
)

// ECC method flags (ARC_PARITY, ARC_HAMMING, ARC_SECDED, ARC_RS).
const (
	Parity      = ecc.MethodParity
	Hamming     = ecc.MethodHamming
	SECDED      = ecc.MethodSECDED
	ReedSolomon = ecc.MethodReedSolomon
)

// Error-response flags (ARC_DET_SPARSE, ARC_COR_SPARSE, ARC_COR_BURST).
const (
	DetSparse = ecc.DetectSparse
	CorSparse = ecc.CorrectSparse
	CorBurst  = ecc.CorrectBurst
)

// Resiliency is the resiliency constraint passed to Encode. The zero
// value (AnyECC) admits every method.
type Resiliency = core.Resiliency

// AnyECC (ARC_ANY_ECC) is the unrestricted resiliency constraint.
var AnyECC = core.AnyECC

// WithMethods restricts ARC to the given ECC methods.
func WithMethods(ms ...ecc.Method) Resiliency { return Resiliency{Methods: ms} }

// WithCaps restricts ARC to methods having every given capability.
func WithCaps(c ecc.Capability) Resiliency { return Resiliency{Caps: c} }

// WithErrorsPerMB restricts ARC to methods able to correct the given
// expected rate of uniformly distributed soft errors per MB.
func WithErrorsPerMB(rate float64) Resiliency { return Resiliency{ErrorsPerMB: rate} }

// ARC is an initialized engine (the handle arc_init returns).
type ARC struct {
	eng *core.Engine
}

// Options tunes Init beyond the paper's single maxThreads argument.
type Options struct {
	// CacheDir overrides where training results are cached
	// ("" = the platform cache dir; "-" disables persistence).
	CacheDir string
	// TrainSampleBytes sizes the training buffer (0 = 4 MiB).
	TrainSampleBytes int
}

// Init initializes ARC with a maximum thread count (arc_init). The
// first run on a machine trains every ECC configuration at thread
// counts up to maxThreads and caches the results; later runs load the
// cache and train only what is missing.
func Init(maxThreads int) (*ARC, error) {
	return InitWithOptions(maxThreads, Options{})
}

// InitWithOptions is Init with explicit cache/training controls.
func InitWithOptions(maxThreads int, opts Options) (*ARC, error) {
	eng, err := core.NewEngine(core.EngineOptions{
		MaxThreads:  maxThreads,
		CacheDir:    opts.CacheDir,
		SampleBytes: opts.TrainSampleBytes,
	})
	if err != nil {
		return nil, err
	}
	return &ARC{eng: eng}, nil
}

// EncodeResult re-exports the engine's encode output.
type EncodeResult = core.EncodeResult

// DecodeResult re-exports the engine's decode output.
type DecodeResult = core.DecodeResult

// Choice re-exports the optimizer's selection.
type Choice = core.Choice

// Encode protects data (arc_encode). mem is the storage-overhead
// budget as a fraction of len(data) (0.25 allows 25% growth; AnyMem
// lifts the bound). bw is the minimum encode throughput in MB/s (AnyBW
// lifts it). res is the resiliency constraint (AnyECC lifts it).
func (a *ARC) Encode(data []byte, mem, bw float64, res Resiliency) (*EncodeResult, error) {
	return a.eng.Encode(data, mem, bw, res)
}

// Decode verifies and repairs an encoded buffer (arc_decode). On
// detected-but-uncorrectable damage it returns both the best-effort
// data and a non-nil error wrapping ecc.ErrUncorrectable.
func (a *ARC) Decode(encoded []byte) (*DecodeResult, error) {
	return a.eng.Decode(encoded)
}

// Save writes the training cache immediately (arc_save).
func (a *ARC) Save() error { return a.eng.Save() }

// Close saves the training cache and releases the engine (arc_close).
func (a *ARC) Close() error { return a.eng.Close() }

// MaxThreads reports the engine's thread cap.
func (a *ARC) MaxThreads() int { return a.eng.MaxThreads() }

// TrainedPoints reports how many (configuration, threads) points Init
// measured (0 on a warm cache).
func (a *ARC) TrainedPoints() int { return a.eng.TrainedPoints() }

// Table exposes the trained throughput model.
func (a *ARC) Table() *core.TrainTable { return a.eng.Table() }

// MemoryOptimizer (arc_memory_optimizer) returns ARC's suggested
// configuration for a storage budget and resiliency constraint.
func (a *ARC) MemoryOptimizer(mem float64, res Resiliency) (Choice, error) {
	return a.eng.Optimizer().Memory(mem, res)
}

// ThroughputOptimizer (arc_throughput_optimizer) returns ARC's
// suggested configuration for a throughput bound and resiliency
// constraint.
func (a *ARC) ThroughputOptimizer(bw float64, res Resiliency) (Choice, error) {
	return a.eng.Optimizer().Throughput(bw, res)
}

// JointOptimizer (arc_joint_optimizer) optimizes under both bounds.
func (a *ARC) JointOptimizer(mem, bw float64, res Resiliency) (Choice, error) {
	return a.eng.Optimizer().Joint(mem, bw, res)
}

// EncodeWith protects data with an explicit optimizer choice — the
// paper's "the user can ignore these suggestions" escape hatch.
func (a *ARC) EncodeWith(data []byte, c Choice) (*EncodeResult, error) {
	return a.eng.EncodeWith(data, c)
}

// Decode decodes a container without an engine: containers are fully
// self-describing. workers bounds the decode parallelism (AnyThreads
// = all CPUs).
func Decode(encoded []byte, workers int) (*DecodeResult, error) {
	return core.DecodeContainer(encoded, workers)
}

// EncodeContainer encodes a container without an engine, using an
// explicit configuration choice — the stateless counterpart of Decode,
// for callers (services, tooling) that pick configurations themselves
// and never need the trained optimizer.
func EncodeContainer(data []byte, c Choice) (*EncodeResult, error) {
	return core.EncodeContainerWith(data, c)
}

// ContainerOverheadBytes is the fixed per-container header cost.
const ContainerOverheadBytes = core.ContainerOverheadBytes

// ILSECDED (ARC_IL_SECDED) is ARC's extension method: interleaved
// SEC-DED, correcting single bursts up to the interleave depth at
// SEC-DED's 12.5% storage cost.
const ILSECDED = ecc.MethodInterleavedSECDED
